package statevec

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/rng"
)

// denseGateMatrix expands a gate instance into the full 2^n x 2^n unitary by
// Kronecker products and explicit permutation — the slow reference the fast
// kernels are validated against.
func denseGateMatrix(n int, g gate.Gate) qmath.Matrix {
	dim := 1 << uint(n)
	gm := g.Matrix()
	full := qmath.NewMatrix(dim)
	k := g.Arity()
	for col := 0; col < dim; col++ {
		// Gate-space column index from the gate qubits' bits of col.
		var gcol int
		for b, q := range g.Qubits {
			if col>>uint(q)&1 == 1 {
				gcol |= 1 << uint(b)
			}
		}
		rest := col
		for _, q := range g.Qubits {
			rest &^= 1 << uint(q)
		}
		for grow := 0; grow < 1<<uint(k); grow++ {
			v := gm.At(grow, gcol)
			if v == 0 {
				continue
			}
			row := rest
			for b, q := range g.Qubits {
				if grow>>uint(b)&1 == 1 {
					row |= 1 << uint(q)
				}
			}
			full.Set(row, col, v)
		}
	}
	return full
}

// randomState returns a normalized random n-qubit state.
func randomState(n int, r *rng.RNG) *State {
	amps := make([]complex128, 1<<uint(n))
	for i := range amps {
		amps[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	s := FromAmplitudes(amps)
	s.Normalize()
	return s
}

// applyDense multiplies the dense gate matrix into a copy of the state.
func applyDense(s *State, n int, g gate.Gate) *State {
	m := denseGateMatrix(n, g)
	return FromAmplitudes(m.MulVec(s.Amplitudes()))
}

func statesClose(a, b *State, tol float64) bool {
	return qmath.VecDistance(a.Amplitudes(), b.Amplitudes()) < tol
}

func testGates(n int) []gate.Gate {
	r := rng.New(99)
	u2 := qmath.RandomUnitary(2, r)
	u4 := qmath.RandomUnitary(4, r)
	u8 := qmath.RandomUnitary(8, r)
	return []gate.Gate{
		gate.New(gate.KindX, 0),
		gate.New(gate.KindX, n-1),
		gate.New(gate.KindH, 1),
		gate.New(gate.KindZ, 2),
		gate.New(gate.KindS, 0),
		gate.New(gate.KindT, n-1),
		gate.NewParam(gate.KindRZ, []float64{0.37}, 1),
		gate.NewParam(gate.KindP, []float64{1.1}, 2),
		gate.NewParam(gate.KindU3, []float64{0.5, 0.2, -0.8}, 0),
		gate.New(gate.KindCX, 0, 1),
		gate.New(gate.KindCX, n-1, 0),
		gate.New(gate.KindCZ, 1, n-1),
		gate.NewParam(gate.KindCP, []float64{0.9}, 2, 0),
		gate.New(gate.KindSWAP, 0, n-1),
		gate.New(gate.KindCCX, 0, 1, 2),
		gate.New(gate.KindCCX, n-1, 2, 0),
		gate.NewUnitary(u2, "u2", 1),
		gate.NewUnitary(u4, "u4", n-1, 1),
		gate.NewUnitary(u8, "u8", 2, 0, n-1),
	}
}

func TestApplyAgainstDenseReference(t *testing.T) {
	const n = 5
	r := rng.New(7)
	for _, g := range testGates(n) {
		s := randomState(n, r)
		fast := s.Clone()
		fast.Apply(g)
		slow := applyDense(s, n, g)
		if !statesClose(fast, slow, 1e-9) {
			t.Errorf("gate %s disagrees with dense reference (dist %v)",
				g, qmath.VecDistance(fast.Amplitudes(), slow.Amplitudes()))
		}
	}
}

func TestApplyParallelMatchesSerial(t *testing.T) {
	// Force the parallel path by lowering the threshold, then compare to
	// the serial result at the default threshold.
	const n = 10
	r := rng.New(8)
	s := randomState(n, r)
	old := ParallelThreshold
	defer func() { ParallelThreshold = old }()

	for _, g := range testGates(n) {
		if g.Arity() == 3 && g.Kind == gate.KindUnitary {
			continue // 3q generic is documented serial
		}
		ParallelThreshold = 1 << 30
		serial := s.Clone()
		serial.Apply(g)
		ParallelThreshold = 1
		par := s.Clone()
		par.Apply(g)
		if !statesClose(serial, par, 1e-12) {
			t.Errorf("gate %s: parallel kernel diverges from serial", g)
		}
	}
}

func TestBellState(t *testing.T) {
	s := NewZero(2)
	s.Apply(gate.New(gate.KindH, 0))
	s.Apply(gate.New(gate.KindCX, 0, 1))
	want := 1 / math.Sqrt2
	if math.Abs(real(s.Amplitude(0))-want) > 1e-12 ||
		math.Abs(real(s.Amplitude(3))-want) > 1e-12 ||
		cmplx.Abs(s.Amplitude(1)) > 1e-12 || cmplx.Abs(s.Amplitude(2)) > 1e-12 {
		t.Fatalf("bell state wrong: %v", s.Amplitudes())
	}
}

func TestGHZProbabilities(t *testing.T) {
	const n = 6
	s := NewZero(n)
	s.Apply(gate.New(gate.KindH, 0))
	for q := 1; q < n; q++ {
		s.Apply(gate.New(gate.KindCX, q-1, q))
	}
	p := s.Probabilities()
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[(1<<n)-1]-0.5) > 1e-12 {
		t.Fatalf("GHZ ends: %v %v", p[0], p[(1<<n)-1])
	}
	for i := 1; i < (1<<n)-1; i++ {
		if p[i] > 1e-12 {
			t.Fatalf("GHZ middle state %d has probability %v", i, p[i])
		}
	}
}

func TestNormPreservation(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		s := randomState(4, r)
		for _, g := range testGates(4) {
			s.Apply(g)
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestUnitaryInvertibility(t *testing.T) {
	// Applying U then U† restores the state for every gate kind.
	const n = 4
	r := rng.New(17)
	for _, g := range testGates(n) {
		s := randomState(n, r)
		orig := s.Clone()
		s.Apply(g)
		s.Apply(g.Dagger())
		// Global phases from Dagger() constructions cancel per-gate here
		// because Dagger returns the exact matrix adjoint.
		if !statesClose(s, orig, 1e-9) {
			t.Errorf("gate %s: U†U does not restore the state", g)
		}
	}
}

func TestProb1(t *testing.T) {
	s := NewZero(3)
	s.Apply(gate.New(gate.KindX, 1))
	if p := s.Prob1(1); math.Abs(p-1) > 1e-12 {
		t.Fatalf("Prob1 after X = %v", p)
	}
	if p := s.Prob1(0); p > 1e-12 {
		t.Fatalf("Prob1 of |0> qubit = %v", p)
	}
	s.Apply(gate.New(gate.KindH, 0))
	if p := s.Prob1(0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("Prob1 after H = %v", p)
	}
}

func TestSamplingDistribution(t *testing.T) {
	s := NewZero(2)
	s.Apply(gate.New(gate.KindH, 0))
	s.Apply(gate.New(gate.KindCX, 0, 1))
	r := rng.New(5)
	counts := map[uint64]int{}
	const shots = 100000
	for i := 0; i < shots; i++ {
		counts[s.Sample(r)]++
	}
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("sampled zero-probability outcome: %v", counts)
	}
	f0 := float64(counts[0]) / shots
	if math.Abs(f0-0.5) > 0.01 {
		t.Fatalf("outcome 0 frequency %v", f0)
	}
}

func TestSampleManyMatchesSample(t *testing.T) {
	const n = 4
	r := rng.New(6)
	s := randomState(n, r)
	many := s.SampleMany(50000, rng.New(1))
	counts := make([]float64, 1<<n)
	for _, m := range many {
		counts[m]++
	}
	p := s.Probabilities()
	for i := range p {
		if math.Abs(counts[i]/50000-p[i]) > 0.02 {
			t.Fatalf("SampleMany frequency mismatch at %d: %v vs %v",
				i, counts[i]/50000, p[i])
		}
	}
}

func TestInnerAndFidelity(t *testing.T) {
	a := NewZero(2)
	b := NewZero(2)
	if f := a.FidelityWith(b); math.Abs(f-1) > 1e-12 {
		t.Fatalf("identical states fidelity %v", f)
	}
	b.Apply(gate.New(gate.KindX, 0))
	if f := a.FidelityWith(b); f > 1e-12 {
		t.Fatalf("orthogonal states fidelity %v", f)
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	r := rng.New(3)
	s := randomState(3, r)
	c := s.Clone()
	c.Apply(gate.New(gate.KindX, 0))
	if statesClose(s, c, 1e-12) {
		t.Fatal("clone aliases parent")
	}
	c.CopyFrom(s)
	if !statesClose(s, c, 1e-15) {
		t.Fatal("CopyFrom failed")
	}
}

func TestFromComponentsSharesStorage(t *testing.T) {
	re := []float64{1, 0, 0, 0}
	im := []float64{0, 0, 0, 0}
	s := FromComponents(re, im)
	if s.NumQubits() != 2 {
		t.Fatalf("wrapped width %d", s.NumQubits())
	}
	s.Apply(gate.New(gate.KindX, 0))
	if re[1] != 1 {
		t.Fatal("FromComponents copied instead of sharing")
	}
}

func TestFromComponentsRejectsBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two accepted")
		}
	}()
	FromComponents(make([]float64, 3), make([]float64, 3))
}

func TestBasisState(t *testing.T) {
	s := NewBasis(3, 5)
	if s.Prob(5) != 1 {
		t.Fatal("basis state wrong")
	}
}

func TestNormalizePanicsOnZero(t *testing.T) {
	s := FromComponents(make([]float64, 4), make([]float64, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("normalizing zero state did not panic")
		}
	}()
	s.Normalize()
}

func TestBytes(t *testing.T) {
	if got := NewZero(10).Bytes(); got != 16*1024 {
		t.Fatalf("Bytes = %d", got)
	}
}

func TestApplyAllMatchesSequential(t *testing.T) {
	const n = 4
	gs := testGates(n)
	r := rng.New(23)
	s1 := randomState(n, r)
	s2 := s1.Clone()
	s1.ApplyAll(gs)
	for _, g := range gs {
		s2.Apply(g)
	}
	if !statesClose(s1, s2, 1e-12) {
		t.Fatal("ApplyAll diverges from sequential Apply")
	}
}

func TestInsertZeroBits(t *testing.T) {
	// Inserting zeros at positions 1 and 3 of 0b11 gives 0b10001? Walk it:
	// i=0b11, insert at 1: 0b101; insert at 3: 0b0101 -> bits 0 and 2 set.
	got := insertZeroBits(0b11, []int{1, 3})
	if got != 0b101 {
		t.Fatalf("insertZeroBits = %b", got)
	}
}

func TestMarginal(t *testing.T) {
	// Bell pair on qubits 0,1 with qubit 2 in |1>.
	s := NewZero(3)
	s.Apply(gate.New(gate.KindH, 0))
	s.Apply(gate.New(gate.KindCX, 0, 1))
	s.Apply(gate.New(gate.KindX, 2))
	m := s.Marginal([]int{0, 1})
	if math.Abs(m[0]-0.5) > 1e-12 || math.Abs(m[3]-0.5) > 1e-12 ||
		m[1] > 1e-12 || m[2] > 1e-12 {
		t.Fatalf("bell marginal %v", m)
	}
	m2 := s.Marginal([]int{2})
	if math.Abs(m2[1]-1) > 1e-12 {
		t.Fatalf("deterministic qubit marginal %v", m2)
	}
	// Bit order follows the qubit list order.
	m3 := s.Marginal([]int{2, 0})
	if math.Abs(m3[0b01]-0.5) > 1e-12 || math.Abs(m3[0b11]-0.5) > 1e-12 {
		t.Fatalf("reordered marginal %v", m3)
	}
	var total float64
	for _, p := range m {
		total += p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("marginal mass %v", total)
	}
}

func TestMarginalCounts(t *testing.T) {
	counts := map[uint64]int{0b101: 3, 0b001: 2, 0b110: 1}
	m := MarginalCounts(counts, []int{0})
	if m[1] != 5 || m[0] != 1 {
		t.Fatalf("marginal counts %v", m)
	}
	m2 := MarginalCounts(counts, []int{2, 1})
	// 0b101 -> bit2=1,bit1=0 -> 0b01; 0b001 -> 0b00; 0b110 -> bit2=1,bit1=1 -> 0b11.
	if m2[0b01] != 3 || m2[0b00] != 2 || m2[0b11] != 1 {
		t.Fatalf("two-qubit marginal counts %v", m2)
	}
}

func TestMarginalRejectsBadQubit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad qubit accepted")
		}
	}()
	NewZero(2).Marginal([]int{5})
}
