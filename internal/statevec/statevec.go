// Package statevec implements the Schrödinger-style state-vector engine the
// whole simulator runs on: 2^n amplitudes, in-place gate kernels with fast
// paths for the common gates, goroutine-parallel application for large
// registers, outcome sampling, and the inner-product machinery the fidelity
// metrics need.
//
// Memory layout: amplitudes are stored structure-of-arrays — two parallel
// []float64 planes (re, im) carved from one allocation — rather than
// []complex128. The split planes turn every kernel inner loop into
// independent float64 stream operations (unit-stride loads/multiplies/adds
// with no interleaved real/imag shuffling), which is what lets the 4-wide
// unrolled loops below keep the FPU pipeline full, and lets gates with real
// matrices (H, RY, X-rotations' real parts, fused real products) skip the
// imaginary half of the arithmetic entirely. Numerics are pinned: each SoA
// kernel evaluates the same products in the same summation order as the
// complex128 code it replaced, so results are bit-identical up to the sign
// of zeros (real fast paths drop exact-zero terms, which can flip -0 to +0;
// probabilities, norms and histograms are unaffected).
//
// Convention: basis index bit i is qubit i (little-endian). For a multi-qubit
// gate, the first entry of Gate.Qubits is the least significant bit of the
// gate matrix's basis index, matching internal/gate.
package statevec

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/rng"
)

// ParallelThreshold is the amplitude count above which gate kernels split
// across goroutines. Below it the goroutine fan-out costs more than it saves.
// It is a variable, not a constant, so benchmarks can ablate it.
var ParallelThreshold = 1 << 14

// MaxQubits caps dense registers: 2^30 amplitudes is 16 GiB, the edge of
// single-node feasibility. Engines with polynomial representations (the
// stabilizer tableau) go beyond it; callers route wide circuits there.
const MaxQubits = 30

// AmpBytes is the storage cost of one amplitude: one float64 per plane.
// Every admission-control and accounting formula in the repo derives from
// this constant (via StateBytes and core.DensePeakBytes) so the planner can
// never silently disagree with the allocator about the layout.
const AmpBytes = 16

// StateBytes returns the amplitude-array footprint of an n-qubit dense
// state under the current layout.
func StateBytes(n int) int64 { return AmpBytes << uint(n) }

// State is an n-qubit pure state in split re/im (structure-of-arrays) form.
type State struct {
	n  int
	re []float64
	im []float64
}

// alloc returns an all-zero n-qubit state. Both planes are carved from a
// single allocation so they stay adjacent in memory (one mmap region, and
// the Go allocator size-class-aligns large float64 slices; each plane is at
// least 8-byte aligned and page-aligned for register widths ≥ 17 qubits).
func alloc(n int) *State {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("statevec: unsupported qubit count %d", n))
	}
	dim := 1 << uint(n)
	buf := make([]float64, 2*dim)
	return &State{n: n, re: buf[:dim:dim], im: buf[dim:]}
}

// NewZero returns |0...0> on n qubits.
func NewZero(n int) *State {
	s := alloc(n)
	s.re[0] = 1
	return s
}

// NewBasis returns the computational basis state |index> on n qubits.
func NewBasis(n int, index uint64) *State {
	s := alloc(n)
	if index >= uint64(len(s.re)) {
		panic("statevec: basis index out of range")
	}
	s.re[index] = 1
	return s
}

// FromAmplitudes builds a state from an amplitude slice (split-copied into
// the SoA planes). The length must be a power of two.
func FromAmplitudes(amps []complex128) *State {
	n := log2len(len(amps), "amplitude length")
	s := alloc(n)
	for i, a := range amps {
		s.re[i] = real(a)
		s.im[i] = imag(a)
	}
	return s
}

// FromComponents adopts existing re/im planes without copying. It exists for
// engines (e.g. internal/cluster's sharded simulator) that manage their own
// amplitude storage but want to reuse this package's kernels. Both slices
// must have the same power-of-two length.
func FromComponents(re, im []float64) *State {
	if len(re) != len(im) {
		panic("statevec: FromComponents plane length mismatch")
	}
	n := log2len(len(re), "component length")
	return &State{n: n, re: re, im: im}
}

func log2len(l int, what string) int {
	n := 0
	for (1 << uint(n)) < l {
		n++
	}
	if 1<<uint(n) != l || n == 0 {
		panic("statevec: " + what + " must be a power of two >= 2")
	}
	return n
}

// View returns an aliasing sub-state over amplitudes [start, start+length):
// mutations through the view mutate s. length must be a power of two >= 2.
// Cluster mode uses views as zero-copy shard windows onto one backing state.
func (s *State) View(start, length int) *State {
	if start < 0 || length < 2 || start+length > len(s.re) {
		panic(fmt.Sprintf("statevec: View [%d,+%d) out of range for dim %d", start, length, len(s.re)))
	}
	n := log2len(length, "View length")
	return &State{n: n, re: s.re[start : start+length : start+length], im: s.im[start : start+length : start+length]}
}

// NumQubits returns n.
func (s *State) NumQubits() int { return s.n }

// Dim returns 2^n.
func (s *State) Dim() int { return len(s.re) }

// Components exposes the underlying re/im planes. Mutations write through
// to the state; callers that mutate are responsible for renormalization.
func (s *State) Components() (re, im []float64) { return s.re, s.im }

// Amplitudes materializes the state as a fresh []complex128 snapshot. It is
// an interleaving copy, not a view: mutating the returned slice does not
// affect the state (use SetAmplitudes, Components, or the kernel methods to
// mutate). Engines on hot paths should prefer Components.
func (s *State) Amplitudes() []complex128 {
	out := make([]complex128, len(s.re))
	for i := range out {
		out[i] = complex(s.re[i], s.im[i])
	}
	return out
}

// SetAmplitudes overwrites the state from an interleaved amplitude slice.
// The length must equal Dim.
func (s *State) SetAmplitudes(amps []complex128) {
	if len(amps) != len(s.re) {
		panic("statevec: SetAmplitudes length mismatch")
	}
	for i, a := range amps {
		s.re[i] = real(a)
		s.im[i] = imag(a)
	}
}

// Amplitude returns amplitude i.
func (s *State) Amplitude(i uint64) complex128 { return complex(s.re[i], s.im[i]) }

// SetAmplitude overwrites amplitude i.
func (s *State) SetAmplitude(i uint64, v complex128) {
	s.re[i] = real(v)
	s.im[i] = imag(v)
}

// ZeroAmplitudes clears every amplitude (the zero vector, not |0...0>).
func (s *State) ZeroAmplitudes() {
	clear(s.re)
	clear(s.im)
}

// ResetZero rewinds the state to |0...0> without reallocating.
func (s *State) ResetZero() {
	s.ZeroAmplitudes()
	s.re[0] = 1
}

// AddFrom accumulates src into s element-wise. Widths must match. Density-
// matrix Kraus sums use it to accumulate branch states without materializing
// interleaved copies.
func (s *State) AddFrom(src *State) {
	if s.n != src.n {
		panic("statevec: AddFrom width mismatch")
	}
	for i := range s.re {
		s.re[i] += src.re[i]
	}
	for i := range s.im {
		s.im[i] += src.im[i]
	}
}

// Bytes returns the memory footprint of the amplitude planes.
func (s *State) Bytes() int { return len(s.re) * AmpBytes }

// Clone returns a deep copy — the "state copy" whose cost TQSim profiles.
func (s *State) Clone() *State {
	c := alloc(s.n)
	copy(c.re, s.re)
	copy(c.im, s.im)
	return c
}

// CopyFrom overwrites s with src without reallocating. Widths must match.
func (s *State) CopyFrom(src *State) {
	if s.n != src.n {
		panic("statevec: CopyFrom width mismatch")
	}
	copy(s.re, src.re)
	copy(s.im, src.im)
}

// Norm returns the Euclidean norm of the state.
func (s *State) Norm() float64 {
	var acc float64
	re, im := s.re, s.im
	for i := range re {
		acc += re[i]*re[i] + im[i]*im[i]
	}
	return math.Sqrt(acc)
}

// Normalize rescales the state to unit norm. It panics on the zero vector.
func (s *State) Normalize() {
	nrm := s.Norm()
	if nrm == 0 {
		panic("statevec: cannot normalize zero state")
	}
	inv := 1 / nrm
	re, im := s.re, s.im
	for i := range re {
		re[i] *= inv
	}
	for i := range im {
		im[i] *= inv
	}
}

// Inner returns <s|t>.
func (s *State) Inner(t *State) complex128 {
	if s.n != t.n {
		panic("statevec: Inner width mismatch")
	}
	var accR, accI float64
	ar, ai, br, bi := s.re, s.im, t.re, t.im
	for i := range ar {
		// conj(a) * b, mirroring complex128 multiplication term order.
		nai := -ai[i]
		accR += ar[i]*br[i] - nai*bi[i]
		accI += ar[i]*bi[i] + nai*br[i]
	}
	return complex(accR, accI)
}

// FidelityWith returns |<s|t>|^2.
func (s *State) FidelityWith(t *State) float64 {
	v := s.Inner(t)
	return real(v)*real(v) + imag(v)*imag(v)
}

// Probabilities returns the measurement distribution over basis states.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.re))
	re, im := s.re, s.im
	for i := range p {
		p[i] = re[i]*re[i] + im[i]*im[i]
	}
	return p
}

// Prob returns the probability of basis outcome i.
func (s *State) Prob(i uint64) float64 {
	return s.re[i]*s.re[i] + s.im[i]*s.im[i]
}

// Prob1 returns the marginal probability that qubit q measures 1. Noise
// channels use it to compute quantum-jump probabilities analytically. Only
// the qubit-q=1 half-space is visited, in contiguous runs; partial sums are
// combined in deterministic chunk order (see parallelSum), so results are
// reproducible across runs regardless of worker scheduling.
func (s *State) Prob1(q int) float64 {
	half := len(s.re) / 2
	if half < ParallelThreshold {
		// Direct call on the serial path: damping channels invoke Prob1
		// once per gate, so the parallel path's closure allocation is worth
		// dodging on small registers.
		return s.prob1Range(q, 0, half)
	}
	return parallelSum(half, func(start, end int) float64 {
		return s.prob1Range(q, start, end)
	})
}

// prob1Range accumulates |amp|^2 over compressed qubit-q=1 subspace indices
// [start, end), visiting amplitudes in ascending order. The inner loop is
// unrolled 4-wide into a single accumulator (p += t0; p += t1; ...), which
// keeps the summation order identical to the scalar loop — jump decisions in
// the damping channels branch on this value, so its bits are pinned.
func (s *State) prob1Range(q, start, end int) float64 {
	mask := 1 << uint(q)
	re, im := s.re, s.im
	var p float64
	if q == 0 {
		for i := 2*start + 1; i < 2*end; i += 2 {
			p += re[i]*re[i] + im[i]*im[i]
		}
		return p
	}
	for j := start; j < end; {
		off := j & (mask - 1)
		base := (j>>uint(q))<<uint(q+1) | mask
		run := mask - off
		if run > end-j {
			run = end - j
		}
		lo := base + off
		rr := re[lo : lo+run]
		ri := im[lo : lo+run : lo+run]
		k := 0
		for ; k+4 <= len(rr); k += 4 {
			p += rr[k]*rr[k] + ri[k]*ri[k]
			p += rr[k+1]*rr[k+1] + ri[k+1]*ri[k+1]
			p += rr[k+2]*rr[k+2] + ri[k+2]*ri[k+2]
			p += rr[k+3]*rr[k+3] + ri[k+3]*ri[k+3]
		}
		for ; k < len(rr); k++ {
			p += rr[k]*rr[k] + ri[k]*ri[k]
		}
		j += run
	}
	return p
}

// Sample draws one basis outcome according to the state's distribution.
// The state must be normalized.
func (s *State) Sample(r *rng.RNG) uint64 {
	target := r.Float64()
	var acc float64
	re, im := s.re, s.im
	for i := range re {
		acc += re[i]*re[i] + im[i]*im[i]
		if target < acc {
			return uint64(i)
		}
	}
	return uint64(len(re) - 1)
}

// SampleMany draws k outcomes. For k large relative to the dimension it
// builds a cumulative table once and binary-searches per draw; for small k
// it falls back to linear scans.
func (s *State) SampleMany(k int, r *rng.RNG) []uint64 {
	out := make([]uint64, k)
	if k*s.Dim() <= 1<<22 && k < 64 {
		for i := range out {
			out[i] = s.Sample(r)
		}
		return out
	}
	re, im := s.re, s.im
	cum := make([]float64, len(re))
	var acc float64
	for i := range re {
		acc += re[i]*re[i] + im[i]*im[i]
		cum[i] = acc
	}
	for i := range out {
		target := r.Float64() * acc
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] <= target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = uint64(lo)
	}
	return out
}

// minRunLen is the shortest contiguous run worth iterating via subslices;
// below it the per-run slicing overhead exceeds the per-index bit-expansion
// it replaces, so kernels fall back to index arithmetic.
const minRunLen = 8

// Apply1Q applies the 2x2 matrix m to qubit t.
func (s *State) Apply1Q(t int, m qmath.Matrix) {
	if m.N != 2 {
		panic("statevec: Apply1Q needs a 2x2 matrix")
	}
	s.apply1q(t, m.Data[0], m.Data[1], m.Data[2], m.Data[3])
}

// ApplyDiag1Q applies the diagonal matrix diag(d0, d1) to qubit t through
// the subspace-only kernel. Noise channels use it to apply phase flips,
// projectors, and damping no-jump operators without building a matrix.
func (s *State) ApplyDiag1Q(t int, d0, d1 complex128) {
	if t < 0 || t >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range", t))
	}
	s.applyDiag1q(t, d0, d1)
}

// ApplyX applies Pauli-X to qubit t through the swap fast path.
func (s *State) ApplyX(t int) {
	if t < 0 || t >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range", t))
	}
	s.applyX(t)
}

// ApplyCPhase multiplies amplitudes with both the qubit-a and qubit-b bits
// set by phase — the CZ/CP fast path, exported for the fusion backend's
// single-gate flushes.
func (s *State) ApplyCPhase(a, b int, phase complex128) {
	if a == b || a < 0 || b < 0 || a >= s.n || b >= s.n {
		panic(fmt.Sprintf("statevec: bad qubit pair (%d,%d)", a, b))
	}
	s.applyCPhase(a, b, phase)
}

// apply1q visits the dim/2 (i0, i0|2^t) amplitude pairs in ascending order.
// Low targets iterate contiguous adjacent pairs; high targets iterate runs
// of 2^t consecutive amplitudes per subslice pair. Matrices with no
// imaginary part (H, RY, fused real products) dispatch to a real-plane
// kernel that does half the arithmetic of the complex one.
func (s *State) apply1q(t int, m00, m01, m10, m11 complex128) {
	if t < 0 || t >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range", t))
	}
	if imag(m00) == 0 && imag(m01) == 0 && imag(m10) == 0 && imag(m11) == 0 {
		s.apply1qReal(t, real(m00), real(m01), real(m10), real(m11))
		return
	}
	s.apply1qCplx(t, m00, m01, m10, m11)
}

// apply1qReal is the real-matrix 1q kernel: the re and im planes transform
// independently (re' = M·re, im' = M·im), so each inner loop streams two
// float64 arrays with four multiplies per element — half the flops of the
// complex kernel, and the main lever behind the H-kernel throughput target.
func (s *State) apply1qReal(t int, m00, m01, m10, m11 float64) {
	mask := 1 << uint(t)
	half := len(s.re) / 2
	re, im := s.re, s.im
	switch {
	case t == 0:
		parallelFor(half, func(start, end int) {
			for i := 2 * start; i < 2*end; i += 2 {
				a0, a1 := re[i], re[i+1]
				re[i] = m00*a0 + m01*a1
				re[i+1] = m10*a0 + m11*a1
			}
			for i := 2 * start; i < 2*end; i += 2 {
				a0, a1 := im[i], im[i+1]
				im[i] = m00*a0 + m01*a1
				im[i+1] = m10*a0 + m11*a1
			}
		})
	case mask < minRunLen:
		parallelFor(half, func(start, end int) {
			for i := start; i < end; i++ {
				i0 := (i>>uint(t))<<uint(t+1) | i&(mask-1)
				i1 := i0 | mask
				a0, a1 := re[i0], re[i1]
				re[i0] = m00*a0 + m01*a1
				re[i1] = m10*a0 + m11*a1
				b0, b1 := im[i0], im[i1]
				im[i0] = m00*b0 + m01*b1
				im[i1] = m10*b0 + m11*b1
			}
		})
	default:
		parallelFor(half, func(start, end int) {
			for j := start; j < end; {
				off := j & (mask - 1)
				base := (j >> uint(t)) << uint(t+1)
				run := mask - off
				if run > end-j {
					run = end - j
				}
				lo, hi := base+off, base+off+mask
				mix1qRealRun(re[lo:lo+run], re[hi:hi+run], m00, m01, m10, m11)
				mix1qRealRun(im[lo:lo+run], im[hi:hi+run], m00, m01, m10, m11)
				j += run
			}
		})
	}
}

// mix1qRealRun applies a real 2x2 to one plane's (lo, hi) streams, 4-wide
// unrolled and branch-free. Elements are independent, so unrolling does not
// change floating-point results.
func mix1qRealRun(lo, hi []float64, m00, m01, m10, m11 float64) {
	hi = hi[:len(lo)]
	k := 0
	for ; k+4 <= len(lo); k += 4 {
		a0, b0 := lo[k], hi[k]
		a1, b1 := lo[k+1], hi[k+1]
		a2, b2 := lo[k+2], hi[k+2]
		a3, b3 := lo[k+3], hi[k+3]
		lo[k] = m00*a0 + m01*b0
		hi[k] = m10*a0 + m11*b0
		lo[k+1] = m00*a1 + m01*b1
		hi[k+1] = m10*a1 + m11*b1
		lo[k+2] = m00*a2 + m01*b2
		hi[k+2] = m10*a2 + m11*b2
		lo[k+3] = m00*a3 + m01*b3
		hi[k+3] = m10*a3 + m11*b3
	}
	for ; k < len(lo); k++ {
		a, b := lo[k], hi[k]
		lo[k] = m00*a + m01*b
		hi[k] = m10*a + m11*b
	}
}

// apply1qCplx is the general complex 1q kernel. Each output component is
// evaluated as (m0·a0) + (m1·a1) with complex products expanded term by
// term, matching the complex128 arithmetic of the previous layout bit for
// bit.
func (s *State) apply1qCplx(t int, m00, m01, m10, m11 complex128) {
	m00r, m00i := real(m00), imag(m00)
	m01r, m01i := real(m01), imag(m01)
	m10r, m10i := real(m10), imag(m10)
	m11r, m11i := real(m11), imag(m11)
	mask := 1 << uint(t)
	half := len(s.re) / 2
	re, im := s.re, s.im
	mix := func(i0, i1 int) {
		a0r, a0i := re[i0], im[i0]
		a1r, a1i := re[i1], im[i1]
		re[i0] = (m00r*a0r - m00i*a0i) + (m01r*a1r - m01i*a1i)
		im[i0] = (m00r*a0i + m00i*a0r) + (m01r*a1i + m01i*a1r)
		re[i1] = (m10r*a0r - m10i*a0i) + (m11r*a1r - m11i*a1i)
		im[i1] = (m10r*a0i + m10i*a0r) + (m11r*a1i + m11i*a1r)
	}
	switch {
	case t == 0:
		parallelFor(half, func(start, end int) {
			for i := 2 * start; i < 2*end; i += 2 {
				mix(i, i+1)
			}
		})
	case mask < minRunLen:
		parallelFor(half, func(start, end int) {
			for i := start; i < end; i++ {
				i0 := (i>>uint(t))<<uint(t+1) | i&(mask-1)
				mix(i0, i0|mask)
			}
		})
	default:
		parallelFor(half, func(start, end int) {
			for j := start; j < end; {
				off := j & (mask - 1)
				base := (j >> uint(t)) << uint(t+1)
				run := mask - off
				if run > end-j {
					run = end - j
				}
				lo, hi := base+off, base+off+mask
				rlo := re[lo : lo+run : lo+run]
				ilo := im[lo : lo+run : lo+run]
				rhi := re[hi : hi+run : hi+run]
				ihi := im[hi : hi+run : hi+run]
				for k := range rlo {
					a0r, a0i := rlo[k], ilo[k]
					a1r, a1i := rhi[k], ihi[k]
					rlo[k] = (m00r*a0r - m00i*a0i) + (m01r*a1r - m01i*a1i)
					ilo[k] = (m00r*a0i + m00i*a0r) + (m01r*a1i + m01i*a1r)
					rhi[k] = (m10r*a0r - m10i*a0i) + (m11r*a1r - m11i*a1i)
					ihi[k] = (m10r*a0i + m10i*a0r) + (m11r*a1i + m11i*a1r)
				}
				j += run
			}
		})
	}
}

// scaleRun multiplies one run of amplitudes by the complex scalar (dr, di),
// 4-wide unrolled.
func scaleRun(re, im []float64, dr, di float64) {
	im = im[:len(re)]
	k := 0
	for ; k+4 <= len(re); k += 4 {
		r0, i0 := re[k], im[k]
		r1, i1 := re[k+1], im[k+1]
		r2, i2 := re[k+2], im[k+2]
		r3, i3 := re[k+3], im[k+3]
		re[k] = r0*dr - i0*di
		im[k] = r0*di + i0*dr
		re[k+1] = r1*dr - i1*di
		im[k+1] = r1*di + i1*dr
		re[k+2] = r2*dr - i2*di
		im[k+2] = r2*di + i2*dr
		re[k+3] = r3*dr - i3*di
		im[k+3] = r3*di + i3*dr
	}
	for ; k < len(re); k++ {
		r, i := re[k], im[k]
		re[k] = r*dr - i*di
		im[k] = r*di + i*dr
	}
}

// scaleRunReal multiplies one run by a real scalar: each plane scales
// independently.
func scaleRunReal(re, im []float64, d float64) {
	for k := range re {
		re[k] *= d
	}
	for k := range im {
		im[k] *= d
	}
}

// scaleHalf multiplies the half-space where qubit t equals the chosen bit by
// d, visiting only those dim/2 amplitudes in contiguous runs.
func (s *State) scaleHalf(t int, one bool, d complex128) {
	mask := 1 << uint(t)
	sel := 0
	if one {
		sel = mask
	}
	dr, di := real(d), imag(d)
	realD := di == 0
	half := len(s.re) / 2
	re, im := s.re, s.im
	if t == 0 {
		parallelFor(half, func(start, end int) {
			if realD {
				for i := 2*start + sel; i < 2*end; i += 2 {
					re[i] *= dr
					im[i] *= dr
				}
				return
			}
			for i := 2*start + sel; i < 2*end; i += 2 {
				r, ii := re[i], im[i]
				re[i] = r*dr - ii*di
				im[i] = r*di + ii*dr
			}
		})
		return
	}
	parallelFor(half, func(start, end int) {
		for j := start; j < end; {
			off := j & (mask - 1)
			base := (j>>uint(t))<<uint(t+1) | sel
			run := mask - off
			if run > end-j {
				run = end - j
			}
			lo := base + off
			if realD {
				scaleRunReal(re[lo:lo+run], im[lo:lo+run], dr)
			} else {
				scaleRun(re[lo:lo+run], im[lo:lo+run], dr, di)
			}
			j += run
		}
	})
}

// applyDiag1q multiplies the qubit-t zero and one amplitudes by d0 and d1.
// Identity halves are skipped entirely (phase gates touch dim/2 amplitudes,
// not dim). When both halves are scaled and the target is low enough that
// runs are sub-cache-line, a single fused pass avoids fetching every line
// twice.
func (s *State) applyDiag1q(t int, d0, d1 complex128) {
	switch {
	case d0 == 1:
		if d1 != 1 {
			s.scaleHalf(t, true, d1)
		}
	case d1 == 1:
		s.scaleHalf(t, false, d0)
	case 1<<uint(t) < minRunLen:
		mask := 1 << uint(t)
		d0r, d0i := real(d0), imag(d0)
		d1r, d1i := real(d1), imag(d1)
		half := len(s.re) / 2
		re, im := s.re, s.im
		scale2 := func(i0, i1 int) {
			r0, i0v := re[i0], im[i0]
			re[i0] = r0*d0r - i0v*d0i
			im[i0] = r0*d0i + i0v*d0r
			r1, i1v := re[i1], im[i1]
			re[i1] = r1*d1r - i1v*d1i
			im[i1] = r1*d1i + i1v*d1r
		}
		if t == 0 {
			parallelFor(half, func(start, end int) {
				for i := 2 * start; i < 2*end; i += 2 {
					scale2(i, i+1)
				}
			})
			return
		}
		parallelFor(half, func(start, end int) {
			for i := start; i < end; i++ {
				i0 := (i>>uint(t))<<uint(t+1) | i&(mask-1)
				scale2(i0, i0|mask)
			}
		})
	default:
		// Both halves scaled, long runs: one fused pass with two sequential
		// streams (2^t apart) so every cache line is loaded exactly once.
		mask := 1 << uint(t)
		d0r, d0i := real(d0), imag(d0)
		d1r, d1i := real(d1), imag(d1)
		half := len(s.re) / 2
		re, im := s.re, s.im
		parallelFor(half, func(start, end int) {
			for j := start; j < end; {
				off := j & (mask - 1)
				base := (j >> uint(t)) << uint(t+1)
				run := mask - off
				if run > end-j {
					run = end - j
				}
				lo, hi := base+off, base+off+mask
				scaleRun(re[lo:lo+run], im[lo:lo+run], d0r, d0i)
				scaleRun(re[hi:hi+run], im[hi:hi+run], d1r, d1i)
				j += run
			}
		})
	}
}

// swapRun exchanges two equal-length runs on one plane, 4-wide unrolled.
func swapRun(a, b []float64) {
	b = b[:len(a)]
	k := 0
	for ; k+4 <= len(a); k += 4 {
		a[k], b[k] = b[k], a[k]
		a[k+1], b[k+1] = b[k+1], a[k+1]
		a[k+2], b[k+2] = b[k+2], a[k+2]
		a[k+3], b[k+3] = b[k+3], a[k+3]
	}
	for ; k < len(a); k++ {
		a[k], b[k] = b[k], a[k]
	}
}

// applyX swaps pair amplitudes — the Pauli-X fast path.
func (s *State) applyX(t int) {
	mask := 1 << uint(t)
	half := len(s.re) / 2
	re, im := s.re, s.im
	switch {
	case t == 0:
		parallelFor(half, func(start, end int) {
			for i := 2 * start; i < 2*end; i += 2 {
				re[i], re[i+1] = re[i+1], re[i]
				im[i], im[i+1] = im[i+1], im[i]
			}
		})
	case mask < minRunLen:
		parallelFor(half, func(start, end int) {
			for i := start; i < end; i++ {
				i0 := (i>>uint(t))<<uint(t+1) | i&(mask-1)
				i1 := i0 | mask
				re[i0], re[i1] = re[i1], re[i0]
				im[i0], im[i1] = im[i1], im[i0]
			}
		})
	default:
		parallelFor(half, func(start, end int) {
			for j := start; j < end; {
				off := j & (mask - 1)
				base := (j >> uint(t)) << uint(t+1)
				run := mask - off
				if run > end-j {
					run = end - j
				}
				lo, hi := base+off, base+off+mask
				swapRun(re[lo:lo+run], re[hi:hi+run])
				swapRun(im[lo:lo+run], im[hi:hi+run])
				j += run
			}
		})
	}
}

// twoBitMasks returns the expansion masks for enumerating indices with the
// (distinct) qubit-a and qubit-b bits clear: expand(j) spreads j across the
// remaining bit positions.
func twoBitMasks(a, b int) (lowMask, midMask int) {
	if a > b {
		a, b = b, a
	}
	lowMask = 1<<uint(a) - 1
	midMask = (1<<uint(b-1) - 1) &^ lowMask
	return lowMask, midMask
}

// applyCX applies CNOT with the given control and target. Only the
// control=1 quarter of the index space is enumerated — each swap pair once,
// via two-zero-bit insertion, with no branch in the inner loop.
func (s *State) applyCX(ctl, tgt int) {
	cmask := 1 << uint(ctl)
	tmask := 1 << uint(tgt)
	lowMask, midMask := twoBitMasks(ctl, tgt)
	quarter := len(s.re) / 4
	re, im := s.re, s.im
	if lowMask+1 < minRunLen {
		parallelFor(quarter, func(start, end int) {
			for j := start; j < end; j++ {
				base := j&lowMask | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2
				i0 := base | cmask
				i1 := i0 | tmask
				re[i0], re[i1] = re[i1], re[i0]
				im[i0], im[i1] = im[i1], im[i0]
			}
		})
		return
	}
	// Below the lower of the two qubits, compressed indices map to
	// consecutive amplitudes: swap two contiguous streams per run.
	parallelFor(quarter, func(start, end int) {
		for j := start; j < end; {
			off := j & lowMask
			base := off | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2 | cmask
			run := lowMask + 1 - off
			if run > end-j {
				run = end - j
			}
			swapRun(re[base:base+run], re[base+tmask:base+tmask+run])
			swapRun(im[base:base+run], im[base+tmask:base+tmask+run])
			j += run
		}
	})
}

// applySwap exchanges qubits a and b: amplitudes whose (a,b) bits read 01
// and 10 trade places, the 00 and 11 quarters are untouched. A pure
// permutation — no arithmetic — enumerated over one quarter of the index
// space like applyCX.
func (s *State) applySwap(a, b int) {
	amask := 1 << uint(a)
	bmask := 1 << uint(b)
	lowMask, midMask := twoBitMasks(a, b)
	quarter := len(s.re) / 4
	re, im := s.re, s.im
	if lowMask+1 < minRunLen {
		parallelFor(quarter, func(start, end int) {
			for j := start; j < end; j++ {
				base := j&lowMask | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2
				i0 := base | amask
				i1 := base | bmask
				re[i0], re[i1] = re[i1], re[i0]
				im[i0], im[i1] = im[i1], im[i0]
			}
		})
		return
	}
	// Below the lower of the two qubits, compressed indices map to
	// consecutive amplitudes: swap two contiguous streams per run.
	parallelFor(quarter, func(start, end int) {
		for j := start; j < end; {
			off := j & lowMask
			base := off | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2
			run := lowMask + 1 - off
			if run > end-j {
				run = end - j
			}
			swapRun(re[base+amask:base+amask+run], re[base+bmask:base+bmask+run])
			swapRun(im[base+amask:base+amask+run], im[base+bmask:base+bmask+run])
			j += run
		}
	})
}

// applyCPhase multiplies amplitudes with both bits set by phase, enumerating
// only that quarter of the index space.
func (s *State) applyCPhase(a, b int, phase complex128) {
	both := 1<<uint(a) | 1<<uint(b)
	lowMask, midMask := twoBitMasks(a, b)
	pr, pi := real(phase), imag(phase)
	realP := pi == 0
	quarter := len(s.re) / 4
	re, im := s.re, s.im
	if lowMask+1 < minRunLen {
		parallelFor(quarter, func(start, end int) {
			for j := start; j < end; j++ {
				i := j&lowMask | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2 | both
				r, ii := re[i], im[i]
				re[i] = r*pr - ii*pi
				im[i] = r*pi + ii*pr
			}
		})
		return
	}
	parallelFor(quarter, func(start, end int) {
		for j := start; j < end; {
			off := j & lowMask
			base := off | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2 | both
			run := lowMask + 1 - off
			if run > end-j {
				run = end - j
			}
			if realP {
				scaleRunReal(re[base:base+run], im[base:base+run], pr)
			} else {
				scaleRun(re[base:base+run], im[base:base+run], pr, pi)
			}
			j += run
		}
	})
}

// ApplyPhaseRun applies a fused run of controlled-phase gates sharing one
// anchor qubit in a single pass: amplitude i with the anchor bit set is
// multiplied by the product of phases[k] over every k whose qubits[k] bit is
// also set in i. This is the cache-blocked fusion path for QFT-style CP
// chains — k diagonal gates for one sweep over the anchor half-space instead
// of k quarter-space sweeps. Phases multiply in slice order, so a run of one
// gate is bit-identical to ApplyCPhase(anchor, qubits[0], phases[0]).
func (s *State) ApplyPhaseRun(anchor int, qubits []int, phases []complex128) {
	if len(qubits) != len(phases) {
		panic("statevec: ApplyPhaseRun qubits/phases length mismatch")
	}
	if len(qubits) == 0 {
		return
	}
	if anchor < 0 || anchor >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range", anchor))
	}
	for _, q := range qubits {
		if q < 0 || q >= s.n || q == anchor {
			panic(fmt.Sprintf("statevec: bad phase-run qubit %d", q))
		}
	}
	// Runs wider than the table bound split into chunks; each chunk is one
	// pass, which still beats per-gate quarter-space sweeps. The bound also
	// shrinks with the register so the 2^k table build stays a vanishing
	// fraction of the 2^(n-1) sweep it serves.
	const maxPhaseTableBits = 12
	maxBits := maxPhaseTableBits
	if nb := s.n - 8; nb < maxBits {
		maxBits = nb
	}
	if maxBits < 1 {
		maxBits = 1
	}
	if len(qubits) > maxBits {
		for start := 0; start < len(qubits); start += maxBits {
			end := start + maxBits
			if end > len(qubits) {
				end = len(qubits)
			}
			s.ApplyPhaseRun(anchor, qubits[start:end], phases[start:end])
		}
		return
	}
	// Product table over gate subsets: tr/ti[key] is the product of
	// phases[j] over the set bits j of key, accumulated in ascending slice
	// order (table[m] = table[m minus high bit] * phases[highBit]), so
	// table[1<<j] == phases[j] exactly and the per-amplitude work drops to
	// a key gather plus one complex multiply.
	k := len(qubits)
	tr := make([]float64, 1<<uint(k))
	ti := make([]float64, 1<<uint(k))
	tr[0] = 1
	for m := 1; m < len(tr); m++ {
		hb := bits.Len(uint(m)) - 1
		rest := m &^ (1 << uint(hb))
		pr, pi := real(phases[hb]), imag(phases[hb])
		tr[m] = tr[rest]*pr - ti[rest]*pi
		ti[m] = tr[rest]*pi + ti[rest]*pr
	}
	// Gate-qubit support ascending (anchor excluded — the sweep below only
	// ever visits the anchor-set half, so the anchor never enters the key).
	// A qubit can carry several gates of the run (the same pair repeated),
	// so each position maps to a mask of product-table bits.
	otherMask := make([]int, s.n)
	for j, q := range qubits {
		otherMask[q] |= 1 << uint(j)
	}
	others := make([]int, 0, k)
	for q := 0; q < s.n; q++ {
		if otherMask[q] != 0 {
			others = append(others, q)
		}
	}
	// Re-key the product table onto sorted support positions (folding
	// duplicate-qubit bits once), so the sweep indexes a dense table whose
	// bit j is support position j. Entry 0 is the exact identity.
	ptr := make([]float64, 1<<uint(len(others)))
	pti := make([]float64, len(ptr))
	for m := range ptr {
		key := 0
		for slot, q := range others {
			if m>>uint(slot)&1 == 1 {
				key |= otherMask[q]
			}
		}
		ptr[m], pti[m] = tr[key], ti[key]
	}
	// Two gratings partition the index space: aligned stretches of
	// 2^anchor indices alternate anchor-clear (untouched) and anchor-set
	// (scaled), and aligned blocks of 2^qmin indices each map to one table
	// key (the support bits are constant across a block). The key walks
	// with the block counter: an increment flips exactly the bit prefix
	// [0, TrailingZeros(blk+1)], so the delta is a prefix-XOR of per-bit
	// contributions — amortized O(1) per block instead of a k-bit gather
	// per amplitude. One extra adv slot because the last increment flips
	// the bit just past the counter (a no-op contribution).
	qmin := others[0]
	blockLen := 1 << uint(qmin)
	amask := 1 << uint(anchor)
	adv := make([]int, s.n-qmin+1)
	for slot, q := range others {
		for t := q - qmin; t < len(adv); t++ {
			adv[t] ^= 1 << uint(slot)
		}
	}
	gatherKey := func(blk int) int {
		key := 0
		for slot, q := range others {
			key |= int(uint(blk)>>uint(q-qmin)&1) << uint(slot)
		}
		return key
	}
	re, im := s.re, s.im
	if anchor < qmin {
		// Blocks contain whole anchored stretches: per block, scale every
		// other stretch of 2^anchor amplitudes with the block's phase.
		nBlocks := len(re) >> uint(qmin)
		parallelFor(nBlocks, func(start, end int) {
			key := gatherKey(start)
			for blk := start; blk < end; blk++ {
				if key != 0 {
					vr, vi := ptr[key], pti[key]
					base := blk << uint(qmin)
					for off := amask; off < blockLen; off += 2 * amask {
						if amask < 16 {
							// Short stretches: an inlined scale beats the
							// call + reslice overhead of the run helpers.
							for i := base + off; i < base+off+amask; i++ {
								r, ii := re[i], im[i]
								re[i] = r*vr - ii*vi
								im[i] = r*vi + ii*vr
							}
						} else if vi == 0 {
							scaleRunReal(re[base+off:base+off+amask], im[base+off:base+off+amask], vr)
						} else {
							scaleRun(re[base+off:base+off+amask], im[base+off:base+off+amask], vr, vi)
						}
					}
				}
				key ^= adv[bits.TrailingZeros(uint(blk+1))]
			}
		})
		return
	}
	// Anchored stretches contain whole blocks (the QFT row shape: the
	// anchor above its controls). Enumerate only the anchor-set half.
	if qmin == 0 {
		// One amplitude per block: the hottest shape (a gate qubit at bit
		// 0 defeats blocking). Walk aligned windows of up to 256
		// amplitudes: the window-base key re-gathers once per window and
		// the low window bits' contribution comes from a LUT, so the
		// inner loop is one load + XOR per amplitude with no carry chain.
		wbits := 8
		if anchor < wbits {
			wbits = anchor
		}
		wlen := 1 << uint(wbits)
		lowLUT := make([]int, wlen)
		for d := 1; d < wlen; d++ {
			t := bits.TrailingZeros(uint(d))
			contrib := adv[t]
			if t > 0 {
				contrib ^= adv[t-1]
			}
			lowLUT[d] = lowLUT[d&(d-1)] ^ contrib
		}
		half := len(re) / 2
		parallelFor(half, func(start, end int) {
			for c := start; c < end; {
				// Insert a set anchor bit to map the anchored-amp counter
				// to its index; windows never cross a stretch boundary
				// (wlen <= 2^anchor), so i advances with c inside one.
				i := (c>>uint(anchor))<<uint(anchor+1) | c&(amask-1) | amask
				wEnd := (c | (wlen - 1)) + 1
				if wEnd > end {
					wEnd = end
				}
				keyW := gatherKey(i &^ (wlen - 1))
				for ; c < wEnd; c, i = c+1, i+1 {
					key := keyW ^ lowLUT[i&(wlen-1)]
					if key != 0 {
						vr, vi := ptr[key], pti[key]
						r, ii := re[i], im[i]
						re[i] = r*vr - ii*vi
						im[i] = r*vi + ii*vr
					}
				}
			}
		})
		return
	}
	// qmin > 0: consecutive runs of sb = 2^(anchor-qmin) blocks; the key
	// re-gathers at each stretch start (amortized over the stretch) and
	// walks with the prefix-XOR advance inside it.
	sb := amask >> uint(qmin)
	lsb := uint(bits.TrailingZeros(uint(sb)))
	anchoredBlocks := len(re) >> uint(qmin+1)
	parallelFor(anchoredBlocks, func(start, end int) {
		// j counts anchored blocks; the containing stretch is j>>lsb, and
		// the global block index interleaves a set anchor bit above it.
		gblk := func(j int) int {
			return (j>>lsb)<<(lsb+1) | sb | j&(sb-1)
		}
		blk := gblk(start)
		key := gatherKey(blk)
		for j := start; j < end; j++ {
			if key != 0 {
				vr, vi := ptr[key], pti[key]
				base := blk << uint(qmin)
				if blockLen < 16 {
					for i := base; i < base+blockLen; i++ {
						r, ii := re[i], im[i]
						re[i] = r*vr - ii*vi
						im[i] = r*vi + ii*vr
					}
				} else if vi == 0 {
					scaleRunReal(re[base:base+blockLen], im[base:base+blockLen], vr)
				} else {
					scaleRun(re[base:base+blockLen], im[base:base+blockLen], vr, vi)
				}
			}
			if j&(sb-1) == sb-1 {
				blk = gblk(j + 1)
				key = gatherKey(blk)
			} else {
				blk++
				key ^= adv[bits.TrailingZeros(uint(blk))]
			}
		}
	})
}

// ApplyDiag2Q applies the diagonal 4x4 diag(d00, d01, d10, d11) to qubits
// (q0, q1), q0 the low bit of the diagonal's basis index, in one pass.
// Fused same-pair blocks whose product collapses to a diagonal (e.g. the
// CX·RZ·CX ZZ-interaction pattern) route here instead of the dense kernel.
func (s *State) ApplyDiag2Q(q0, q1 int, d00, d01, d10, d11 complex128) {
	if q0 == q1 || q0 < 0 || q1 < 0 || q0 >= s.n || q1 >= s.n {
		panic(fmt.Sprintf("statevec: bad qubit pair (%d,%d)", q0, q1))
	}
	dr := [4]float64{real(d00), real(d01), real(d10), real(d11)}
	di := [4]float64{imag(d00), imag(d01), imag(d10), imag(d11)}
	skip := [4]bool{d00 == 1, d01 == 1, d10 == 1, d11 == 1}
	re, im := s.re, s.im
	parallelFor(len(re), func(start, end int) {
		for i := start; i < end; i++ {
			sel := i>>uint(q0)&1 | (i>>uint(q1)&1)<<1
			if skip[sel] {
				continue
			}
			r, ii := re[i], im[i]
			re[i] = r*dr[sel] - ii*di[sel]
			im[i] = r*di[sel] + ii*dr[sel]
		}
	})
}

// Apply2Q applies the 4x4 matrix m to qubits (q0, q1), q0 the low bit of
// the matrix basis index.
func (s *State) Apply2Q(q0, q1 int, m qmath.Matrix) {
	if m.N != 4 {
		panic("statevec: Apply2Q needs a 4x4 matrix")
	}
	if q0 == q1 || q0 < 0 || q1 < 0 || q0 >= s.n || q1 >= s.n {
		panic(fmt.Sprintf("statevec: bad qubit pair (%d,%d)", q0, q1))
	}
	var mr, mi [16]float64
	allReal := true
	for i, v := range m.Data {
		mr[i], mi[i] = real(v), imag(v)
		if mi[i] != 0 {
			allReal = false
		}
	}
	m0 := 1 << uint(q0)
	m1 := 1 << uint(q1)
	// Iterate over indices with both bits clear by inserting two zero bits.
	lowMask, midMask := twoBitMasks(q0, q1)
	quarter := len(s.re) / 4
	re, im := s.re, s.im
	// mix transforms the four basis slots at absolute indices i00..i11,
	// expanding each complex product term by term with the same ((t0+t1)+t2)+t3
	// association as the complex128 kernel.
	mix := func(i00, i01, i10, i11 int) {
		a0r, a0i := re[i00], im[i00]
		a1r, a1i := re[i01], im[i01]
		a2r, a2i := re[i10], im[i10]
		a3r, a3i := re[i11], im[i11]
		re[i00] = ((mr[0]*a0r - mi[0]*a0i) + (mr[1]*a1r - mi[1]*a1i) + (mr[2]*a2r - mi[2]*a2i)) + (mr[3]*a3r - mi[3]*a3i)
		im[i00] = ((mr[0]*a0i + mi[0]*a0r) + (mr[1]*a1i + mi[1]*a1r) + (mr[2]*a2i + mi[2]*a2r)) + (mr[3]*a3i + mi[3]*a3r)
		re[i01] = ((mr[4]*a0r - mi[4]*a0i) + (mr[5]*a1r - mi[5]*a1i) + (mr[6]*a2r - mi[6]*a2i)) + (mr[7]*a3r - mi[7]*a3i)
		im[i01] = ((mr[4]*a0i + mi[4]*a0r) + (mr[5]*a1i + mi[5]*a1r) + (mr[6]*a2i + mi[6]*a2r)) + (mr[7]*a3i + mi[7]*a3r)
		re[i10] = ((mr[8]*a0r - mi[8]*a0i) + (mr[9]*a1r - mi[9]*a1i) + (mr[10]*a2r - mi[10]*a2i)) + (mr[11]*a3r - mi[11]*a3i)
		im[i10] = ((mr[8]*a0i + mi[8]*a0r) + (mr[9]*a1i + mi[9]*a1r) + (mr[10]*a2i + mi[10]*a2r)) + (mr[11]*a3i + mi[11]*a3r)
		re[i11] = ((mr[12]*a0r - mi[12]*a0i) + (mr[13]*a1r - mi[13]*a1i) + (mr[14]*a2r - mi[14]*a2i)) + (mr[15]*a3r - mi[15]*a3i)
		im[i11] = ((mr[12]*a0i + mi[12]*a0r) + (mr[13]*a1i + mi[13]*a1r) + (mr[14]*a2i + mi[14]*a2r)) + (mr[15]*a3i + mi[15]*a3r)
	}
	mixReal := func(p []float64, i00, i01, i10, i11 int) {
		a0, a1, a2, a3 := p[i00], p[i01], p[i10], p[i11]
		p[i00] = ((mr[0]*a0 + mr[1]*a1) + mr[2]*a2) + mr[3]*a3
		p[i01] = ((mr[4]*a0 + mr[5]*a1) + mr[6]*a2) + mr[7]*a3
		p[i10] = ((mr[8]*a0 + mr[9]*a1) + mr[10]*a2) + mr[11]*a3
		p[i11] = ((mr[12]*a0 + mr[13]*a1) + mr[14]*a2) + mr[15]*a3
	}
	if lowMask+1 < minRunLen {
		// Low qubit too low for worthwhile runs: per-index bit expansion.
		parallelFor(quarter, func(start, end int) {
			for j := start; j < end; j++ {
				base := j&lowMask | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2
				if allReal {
					mixReal(re, base, base|m0, base|m1, base|m0|m1)
					mixReal(im, base, base|m0, base|m1, base|m0|m1)
					continue
				}
				mix(base, base|m0, base|m1, base|m0|m1)
			}
		})
		return
	}
	// Consecutive compressed indices below the low qubit map to consecutive
	// amplitude indices, so the four basis slots become four contiguous
	// streams of up to 2^low elements each.
	parallelFor(quarter, func(start, end int) {
		for j := start; j < end; {
			off := j & lowMask
			base := off | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2
			run := lowMask + 1 - off
			if run > end-j {
				run = end - j
			}
			if allReal {
				for k := 0; k < run; k++ {
					mixReal(re, base+k, base+m0+k, base+m1+k, base+m0+m1+k)
				}
				for k := 0; k < run; k++ {
					mixReal(im, base+k, base+m0+k, base+m1+k, base+m0+m1+k)
				}
			} else {
				for k := 0; k < run; k++ {
					mix(base+k, base+m0+k, base+m1+k, base+m0+m1+k)
				}
			}
			j += run
		}
	})
}

// Apply3Q applies the 8x8 matrix m to qubits (q0, q1, q2), q0 the low bit.
// Unlike the previous serial scatter/gather implementation, the kernel is
// parallel and, for high-enough low qubits, iterates eight contiguous
// streams per run — so a fused 3-qubit block costs one cache-friendly pass
// over the state.
func (s *State) Apply3Q(q0, q1, q2 int, m qmath.Matrix) {
	if m.N != 8 {
		panic("statevec: Apply3Q needs an 8x8 matrix")
	}
	qs := [3]int{q0, q1, q2}
	var masks [3]int
	for i, q := range qs {
		if q < 0 || q >= s.n {
			panic(fmt.Sprintf("statevec: qubit %d out of range", q))
		}
		masks[i] = 1 << uint(q)
	}
	var mr, mi [64]float64
	allReal := true
	for i, v := range m.Data {
		mr[i], mi[i] = real(v), imag(v)
		if mi[i] != 0 {
			allReal = false
		}
	}
	sorted := qs
	if sorted[0] > sorted[1] {
		sorted[0], sorted[1] = sorted[1], sorted[0]
	}
	if sorted[1] > sorted[2] {
		sorted[1], sorted[2] = sorted[2], sorted[1]
	}
	if sorted[0] > sorted[1] {
		sorted[0], sorted[1] = sorted[1], sorted[0]
	}
	// Basis-slot offsets: bit k of the slot selects masks[k].
	var offs [8]int
	for b := 0; b < 8; b++ {
		o := 0
		if b&1 != 0 {
			o |= masks[0]
		}
		if b&2 != 0 {
			o |= masks[1]
		}
		if b&4 != 0 {
			o |= masks[2]
		}
		offs[b] = o
	}
	eighth := len(s.re) / 8
	re, im := s.re, s.im
	// mixAt gathers the eight slot amplitudes at base, applies the 8x8, and
	// scatters. Row sums accumulate left to right from zero, matching the
	// previous complex128 loop's association.
	mixAt := func(base int) {
		var vr, vi [8]float64
		for b := 0; b < 8; b++ {
			vr[b] = re[base+offs[b]]
			vi[b] = im[base+offs[b]]
		}
		for row := 0; row < 8; row++ {
			var ar, ai float64
			mrow := row * 8
			for col := 0; col < 8; col++ {
				ar += mr[mrow+col]*vr[col] - mi[mrow+col]*vi[col]
				ai += mr[mrow+col]*vi[col] + mi[mrow+col]*vr[col]
			}
			re[base+offs[row]] = ar
			im[base+offs[row]] = ai
		}
	}
	mixAtReal := func(base int) {
		var vr, vi [8]float64
		for b := 0; b < 8; b++ {
			vr[b] = re[base+offs[b]]
			vi[b] = im[base+offs[b]]
		}
		for row := 0; row < 8; row++ {
			var ar, ai float64
			mrow := row * 8
			for col := 0; col < 8; col++ {
				ar += mr[mrow+col] * vr[col]
				ai += mr[mrow+col] * vi[col]
			}
			re[base+offs[row]] = ar
			im[base+offs[row]] = ai
		}
	}
	lowMask := 1<<uint(sorted[0]) - 1
	sortedSlice := sorted[:]
	if lowMask+1 < minRunLen {
		parallelFor(eighth, func(start, end int) {
			for j := start; j < end; j++ {
				base := int(insertZeroBits(uint64(j), sortedSlice))
				if allReal {
					mixAtReal(base)
				} else {
					mixAt(base)
				}
			}
		})
		return
	}
	// Runs: compressed indices below the lowest qubit map to consecutive
	// amplitudes, so the eight slots are eight contiguous streams per run.
	parallelFor(eighth, func(start, end int) {
		for j := start; j < end; {
			off := j & lowMask
			base := int(insertZeroBits(uint64(j-off), sortedSlice)) + off
			run := lowMask + 1 - off
			if run > end-j {
				run = end - j
			}
			if allReal {
				for k := 0; k < run; k++ {
					mixAtReal(base + k)
				}
			} else {
				for k := 0; k < run; k++ {
					mixAt(base + k)
				}
			}
			j += run
		}
	})
}

// insertZeroBits expands i by inserting zero bits at the (sorted ascending)
// positions given, producing an index with those bits clear.
func insertZeroBits(i uint64, sortedPositions []int) uint64 {
	for _, p := range sortedPositions {
		lower := i & (uint64(1)<<uint(p) - 1)
		i = (i>>uint(p))<<uint(p+1) | lower
	}
	return i
}

// Apply applies a gate instance, choosing a fast path when one exists.
func (s *State) Apply(g gate.Gate) {
	switch g.Kind {
	case gate.KindI:
		return
	case gate.KindX:
		s.applyX(g.Qubits[0])
	case gate.KindZ:
		s.applyDiag1q(g.Qubits[0], 1, -1)
	case gate.KindS:
		s.applyDiag1q(g.Qubits[0], 1, 1i)
	case gate.KindSdg:
		s.applyDiag1q(g.Qubits[0], 1, -1i)
	case gate.KindT:
		s.applyDiag1q(g.Qubits[0], 1, cmplx.Exp(1i*math.Pi/4))
	case gate.KindTdg:
		s.applyDiag1q(g.Qubits[0], 1, cmplx.Exp(-1i*math.Pi/4))
	case gate.KindP:
		s.applyDiag1q(g.Qubits[0], 1, cmplx.Exp(complex(0, g.Params[0])))
	case gate.KindRZ:
		t := g.Params[0] / 2
		s.applyDiag1q(g.Qubits[0], cmplx.Exp(complex(0, -t)), cmplx.Exp(complex(0, t)))
	case gate.KindCX:
		s.applyCX(g.Qubits[0], g.Qubits[1])
	case gate.KindCZ:
		s.applyCPhase(g.Qubits[0], g.Qubits[1], -1)
	case gate.KindCP:
		s.applyCPhase(g.Qubits[0], g.Qubits[1], cmplx.Exp(complex(0, g.Params[0])))
	case gate.KindSWAP:
		s.applySwap(g.Qubits[0], g.Qubits[1])
	default:
		switch g.Arity() {
		case 1:
			s.Apply1Q(g.Qubits[0], g.Matrix())
		case 2:
			s.Apply2Q(g.Qubits[0], g.Qubits[1], g.Matrix())
		case 3:
			s.Apply3Q(g.Qubits[0], g.Qubits[1], g.Qubits[2], g.Matrix())
		default:
			panic(fmt.Sprintf("statevec: unsupported arity %d", g.Arity()))
		}
	}
}

// ApplyAll applies every gate of the circuit in order.
func (s *State) ApplyAll(gs []gate.Gate) {
	for _, g := range gs {
		s.Apply(g)
	}
}

// Marginal returns the measurement distribution over the listed qubits
// (ascending significance: bit i of the returned index is qubits[i]),
// tracing out the rest. Useful for workloads whose answer lives in a
// sub-register, e.g. Bernstein-Vazirani's data qubits next to its ancilla.
func (s *State) Marginal(qubits []int) []float64 {
	masks := make([]uint64, len(qubits))
	for i, q := range qubits {
		if q < 0 || q >= s.n {
			panic(fmt.Sprintf("statevec: marginal qubit %d out of range", q))
		}
		masks[i] = uint64(1) << uint(q)
	}
	out := make([]float64, 1<<uint(len(qubits)))
	re, im := s.re, s.im
	for i := range re {
		p := re[i]*re[i] + im[i]*im[i]
		if p == 0 {
			continue
		}
		var idx uint64
		for b, m := range masks {
			if uint64(i)&m != 0 {
				idx |= 1 << uint(b)
			}
		}
		out[idx] += p
	}
	return out
}

// MarginalCounts projects a measurement histogram onto the listed qubits,
// same bit convention as Marginal.
func MarginalCounts(counts map[uint64]int, qubits []int) map[uint64]int {
	out := make(map[uint64]int, len(counts))
	for bits, n := range counts {
		var idx uint64
		for b, q := range qubits {
			if bits>>uint(q)&1 == 1 {
				idx |= 1 << uint(b)
			}
		}
		out[idx] += n
	}
	return out
}
