// Package statevec implements the Schrödinger-style state-vector engine the
// whole simulator runs on: 2^n complex amplitudes, in-place gate kernels with
// fast paths for the common gates, goroutine-parallel application for large
// registers, outcome sampling, and the inner-product machinery the fidelity
// metrics need.
//
// Convention: basis index bit i is qubit i (little-endian). For a multi-qubit
// gate, the first entry of Gate.Qubits is the least significant bit of the
// gate matrix's basis index, matching internal/gate.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"

	"tqsim/internal/gate"
	"tqsim/internal/qmath"
	"tqsim/internal/rng"
)

// ParallelThreshold is the amplitude count above which gate kernels split
// across goroutines. Below it the goroutine fan-out costs more than it saves.
// It is a variable, not a constant, so benchmarks can ablate it.
var ParallelThreshold = 1 << 14

// MaxQubits caps dense registers: 2^30 amplitudes is 16 GiB, the edge of
// single-node feasibility. Engines with polynomial representations (the
// stabilizer tableau) go beyond it; callers route wide circuits there.
const MaxQubits = 30

// State is an n-qubit pure state.
type State struct {
	n    int
	amps []complex128
}

// NewZero returns |0...0> on n qubits.
func NewZero(n int) *State {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("statevec: unsupported qubit count %d", n))
	}
	s := &State{n: n, amps: make([]complex128, 1<<uint(n))}
	s.amps[0] = 1
	return s
}

// NewBasis returns the computational basis state |index> on n qubits.
func NewBasis(n int, index uint64) *State {
	s := NewZero(n)
	if index >= uint64(len(s.amps)) {
		panic("statevec: basis index out of range")
	}
	s.amps[0] = 0
	s.amps[index] = 1
	return s
}

// FromAmplitudes builds a state from an amplitude slice (copied). The length
// must be a power of two.
func FromAmplitudes(amps []complex128) *State {
	n := 0
	for (1 << uint(n)) < len(amps) {
		n++
	}
	if 1<<uint(n) != len(amps) || n == 0 {
		panic("statevec: amplitude length must be a power of two >= 2")
	}
	s := &State{n: n, amps: make([]complex128, len(amps))}
	copy(s.amps, amps)
	return s
}

// Wrap adopts an existing amplitude slice without copying. It exists for
// engines (e.g. internal/cluster's sharded simulator) that manage their own
// amplitude storage but want to reuse this package's kernels. The slice
// length must be a power of two.
func Wrap(amps []complex128) *State {
	n := 0
	for (1 << uint(n)) < len(amps) {
		n++
	}
	if 1<<uint(n) != len(amps) || n == 0 {
		panic("statevec: Wrap needs a power-of-two amplitude slice")
	}
	return &State{n: n, amps: amps}
}

// NumQubits returns n.
func (s *State) NumQubits() int { return s.n }

// Dim returns 2^n.
func (s *State) Dim() int { return len(s.amps) }

// Amplitudes exposes the underlying amplitude slice. Callers must treat it
// as read-only; mutating it bypasses normalization bookkeeping.
func (s *State) Amplitudes() []complex128 { return s.amps }

// Amplitude returns amplitude i.
func (s *State) Amplitude(i uint64) complex128 { return s.amps[i] }

// Bytes returns the memory footprint of the amplitude array.
func (s *State) Bytes() int { return len(s.amps) * 16 }

// Clone returns a deep copy — the "state copy" whose cost TQSim profiles.
func (s *State) Clone() *State {
	c := &State{n: s.n, amps: make([]complex128, len(s.amps))}
	copy(c.amps, s.amps)
	return c
}

// CopyFrom overwrites s with src without reallocating. Widths must match.
func (s *State) CopyFrom(src *State) {
	if s.n != src.n {
		panic("statevec: CopyFrom width mismatch")
	}
	copy(s.amps, src.amps)
}

// Norm returns the Euclidean norm of the state.
func (s *State) Norm() float64 { return qmath.VecNorm(s.amps) }

// Normalize rescales the state to unit norm. It panics on the zero vector.
func (s *State) Normalize() {
	nrm := s.Norm()
	if nrm == 0 {
		panic("statevec: cannot normalize zero state")
	}
	inv := complex(1/nrm, 0)
	for i := range s.amps {
		s.amps[i] *= inv
	}
}

// Inner returns <s|t>.
func (s *State) Inner(t *State) complex128 {
	if s.n != t.n {
		panic("statevec: Inner width mismatch")
	}
	return qmath.VecInner(s.amps, t.amps)
}

// FidelityWith returns |<s|t>|^2.
func (s *State) FidelityWith(t *State) float64 {
	v := s.Inner(t)
	return real(v)*real(v) + imag(v)*imag(v)
}

// Probabilities returns the measurement distribution over basis states.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.amps))
	for i, a := range s.amps {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// Prob returns the probability of basis outcome i.
func (s *State) Prob(i uint64) float64 {
	a := s.amps[i]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Prob1 returns the marginal probability that qubit q measures 1. Noise
// channels use it to compute quantum-jump probabilities analytically. Only
// the qubit-q=1 half-space is visited, in contiguous runs; partial sums are
// combined in deterministic chunk order (see parallelSum), so results are
// reproducible across runs regardless of worker scheduling.
func (s *State) Prob1(q int) float64 {
	half := len(s.amps) / 2
	if half < ParallelThreshold {
		// Direct call on the serial path: damping channels invoke Prob1
		// once per gate, so the parallel path's closure allocation is worth
		// dodging on small registers.
		return s.prob1Range(q, 0, half)
	}
	return parallelSum(half, func(start, end int) float64 {
		return s.prob1Range(q, start, end)
	})
}

// prob1Range accumulates |amp|^2 over compressed qubit-q=1 subspace indices
// [start, end), visiting amplitudes in ascending order (the summation order
// is therefore independent of how the range is chunked only up to chunk
// boundaries, which parallelSum pins deterministically).
func (s *State) prob1Range(q, start, end int) float64 {
	mask := 1 << uint(q)
	amps := s.amps
	var p float64
	if q == 0 {
		for i := 2*start + 1; i < 2*end; i += 2 {
			a := amps[i]
			p += real(a)*real(a) + imag(a)*imag(a)
		}
		return p
	}
	for j := start; j < end; {
		off := j & (mask - 1)
		base := (j>>uint(q))<<uint(q+1) | mask
		run := mask - off
		if run > end-j {
			run = end - j
		}
		for _, a := range amps[base+off : base+off+run] {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
		j += run
	}
	return p
}

// Sample draws one basis outcome according to the state's distribution.
// The state must be normalized.
func (s *State) Sample(r *rng.RNG) uint64 {
	target := r.Float64()
	var acc float64
	for i, a := range s.amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if target < acc {
			return uint64(i)
		}
	}
	return uint64(len(s.amps) - 1)
}

// SampleMany draws k outcomes. For k large relative to the dimension it
// builds a cumulative table once and binary-searches per draw; for small k
// it falls back to linear scans.
func (s *State) SampleMany(k int, r *rng.RNG) []uint64 {
	out := make([]uint64, k)
	if k*s.Dim() <= 1<<22 && k < 64 {
		for i := range out {
			out[i] = s.Sample(r)
		}
		return out
	}
	cum := make([]float64, len(s.amps))
	var acc float64
	for i, a := range s.amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		cum[i] = acc
	}
	for i := range out {
		target := r.Float64() * acc
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] <= target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = uint64(lo)
	}
	return out
}

// minRunLen is the shortest contiguous run worth iterating via subslices;
// below it the per-run slicing overhead exceeds the per-index bit-expansion
// it replaces, so kernels fall back to index arithmetic.
const minRunLen = 8

// Apply1Q applies the 2x2 matrix m to qubit t.
func (s *State) Apply1Q(t int, m qmath.Matrix) {
	if m.N != 2 {
		panic("statevec: Apply1Q needs a 2x2 matrix")
	}
	s.apply1q(t, m.Data[0], m.Data[1], m.Data[2], m.Data[3])
}

// ApplyDiag1Q applies the diagonal matrix diag(d0, d1) to qubit t through
// the subspace-only kernel. Noise channels use it to apply phase flips,
// projectors, and damping no-jump operators without building a matrix.
func (s *State) ApplyDiag1Q(t int, d0, d1 complex128) {
	if t < 0 || t >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range", t))
	}
	s.applyDiag1q(t, d0, d1)
}

// ApplyX applies Pauli-X to qubit t through the swap fast path.
func (s *State) ApplyX(t int) {
	if t < 0 || t >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range", t))
	}
	s.applyX(t)
}

// apply1q visits the dim/2 (i0, i0|2^t) amplitude pairs in ascending order.
// Low targets iterate contiguous adjacent pairs; high targets iterate runs
// of 2^t consecutive amplitudes per subslice pair, so the inner loop is
// branch-free index-increment code the compiler can keep in registers.
func (s *State) apply1q(t int, m00, m01, m10, m11 complex128) {
	if t < 0 || t >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range", t))
	}
	mask := 1 << uint(t)
	half := len(s.amps) / 2
	amps := s.amps
	switch {
	case t == 0:
		parallelFor(half, func(start, end int) {
			for i := 2 * start; i < 2*end; i += 2 {
				a0, a1 := amps[i], amps[i+1]
				amps[i] = m00*a0 + m01*a1
				amps[i+1] = m10*a0 + m11*a1
			}
		})
	case mask < minRunLen:
		parallelFor(half, func(start, end int) {
			for i := start; i < end; i++ {
				i0 := (i>>uint(t))<<uint(t+1) | i&(mask-1)
				i1 := i0 | mask
				a0, a1 := amps[i0], amps[i1]
				amps[i0] = m00*a0 + m01*a1
				amps[i1] = m10*a0 + m11*a1
			}
		})
	default:
		parallelFor(half, func(start, end int) {
			for j := start; j < end; {
				off := j & (mask - 1)
				base := (j >> uint(t)) << uint(t+1)
				run := mask - off
				if run > end-j {
					run = end - j
				}
				lo := amps[base+off : base+off+run]
				hi := amps[base+off+mask : base+off+mask+run]
				for k := range lo {
					a0, a1 := lo[k], hi[k]
					lo[k] = m00*a0 + m01*a1
					hi[k] = m10*a0 + m11*a1
				}
				j += run
			}
		})
	}
}

// scaleHalf multiplies the half-space where qubit t equals the chosen bit by
// d, visiting only those dim/2 amplitudes in contiguous runs.
func (s *State) scaleHalf(t int, one bool, d complex128) {
	mask := 1 << uint(t)
	sel := 0
	if one {
		sel = mask
	}
	half := len(s.amps) / 2
	amps := s.amps
	if t == 0 {
		parallelFor(half, func(start, end int) {
			for i := 2*start + sel; i < 2*end; i += 2 {
				amps[i] *= d
			}
		})
		return
	}
	parallelFor(half, func(start, end int) {
		for j := start; j < end; {
			off := j & (mask - 1)
			base := (j>>uint(t))<<uint(t+1) | sel
			run := mask - off
			if run > end-j {
				run = end - j
			}
			seg := amps[base+off : base+off+run]
			for k := range seg {
				seg[k] *= d
			}
			j += run
		}
	})
}

// applyDiag1q multiplies the qubit-t zero and one amplitudes by d0 and d1.
// Identity halves are skipped entirely (phase gates touch dim/2 amplitudes,
// not dim). When both halves are scaled and the target is low enough that
// runs are sub-cache-line, a single fused pass avoids fetching every line
// twice.
func (s *State) applyDiag1q(t int, d0, d1 complex128) {
	switch {
	case d0 == 1:
		if d1 != 1 {
			s.scaleHalf(t, true, d1)
		}
	case d1 == 1:
		s.scaleHalf(t, false, d0)
	case 1<<uint(t) < minRunLen:
		mask := 1 << uint(t)
		half := len(s.amps) / 2
		amps := s.amps
		if t == 0 {
			parallelFor(half, func(start, end int) {
				for i := 2 * start; i < 2*end; i += 2 {
					amps[i] *= d0
					amps[i+1] *= d1
				}
			})
			return
		}
		parallelFor(half, func(start, end int) {
			for i := start; i < end; i++ {
				i0 := (i>>uint(t))<<uint(t+1) | i&(mask-1)
				amps[i0] *= d0
				amps[i0|mask] *= d1
			}
		})
	default:
		// Both halves scaled, long runs: one fused pass with two sequential
		// streams (2^t apart) so every cache line is loaded exactly once.
		mask := 1 << uint(t)
		half := len(s.amps) / 2
		amps := s.amps
		parallelFor(half, func(start, end int) {
			for j := start; j < end; {
				off := j & (mask - 1)
				base := (j >> uint(t)) << uint(t+1)
				run := mask - off
				if run > end-j {
					run = end - j
				}
				lo := amps[base+off : base+off+run]
				hi := amps[base+off+mask : base+off+mask+run]
				for k := range lo {
					lo[k] *= d0
					hi[k] *= d1
				}
				j += run
			}
		})
	}
}

// applyX swaps pair amplitudes — the Pauli-X fast path.
func (s *State) applyX(t int) {
	mask := 1 << uint(t)
	half := len(s.amps) / 2
	amps := s.amps
	switch {
	case t == 0:
		parallelFor(half, func(start, end int) {
			for i := 2 * start; i < 2*end; i += 2 {
				amps[i], amps[i+1] = amps[i+1], amps[i]
			}
		})
	case mask < minRunLen:
		parallelFor(half, func(start, end int) {
			for i := start; i < end; i++ {
				i0 := (i>>uint(t))<<uint(t+1) | i&(mask-1)
				i1 := i0 | mask
				amps[i0], amps[i1] = amps[i1], amps[i0]
			}
		})
	default:
		parallelFor(half, func(start, end int) {
			for j := start; j < end; {
				off := j & (mask - 1)
				base := (j >> uint(t)) << uint(t+1)
				run := mask - off
				if run > end-j {
					run = end - j
				}
				lo := amps[base+off : base+off+run]
				hi := amps[base+off+mask : base+off+mask+run]
				for k := range lo {
					lo[k], hi[k] = hi[k], lo[k]
				}
				j += run
			}
		})
	}
}

// twoBitMasks returns the expansion masks for enumerating indices with the
// (distinct) qubit-a and qubit-b bits clear: expand(j) spreads j across the
// remaining bit positions.
func twoBitMasks(a, b int) (lowMask, midMask int) {
	if a > b {
		a, b = b, a
	}
	lowMask = 1<<uint(a) - 1
	midMask = (1<<uint(b-1) - 1) &^ lowMask
	return lowMask, midMask
}

// applyCX applies CNOT with the given control and target. Only the
// control=1 quarter of the index space is enumerated — each swap pair once,
// via two-zero-bit insertion, with no branch in the inner loop.
func (s *State) applyCX(ctl, tgt int) {
	cmask := 1 << uint(ctl)
	tmask := 1 << uint(tgt)
	lowMask, midMask := twoBitMasks(ctl, tgt)
	quarter := len(s.amps) / 4
	amps := s.amps
	if lowMask+1 < minRunLen {
		parallelFor(quarter, func(start, end int) {
			for j := start; j < end; j++ {
				base := j&lowMask | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2
				i0 := base | cmask
				i1 := i0 | tmask
				amps[i0], amps[i1] = amps[i1], amps[i0]
			}
		})
		return
	}
	// Below the lower of the two qubits, compressed indices map to
	// consecutive amplitudes: swap two contiguous streams per run.
	parallelFor(quarter, func(start, end int) {
		for j := start; j < end; {
			off := j & lowMask
			base := off | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2 | cmask
			run := lowMask + 1 - off
			if run > end-j {
				run = end - j
			}
			s0 := amps[base : base+run]
			s1 := amps[base+tmask : base+tmask+run]
			for k := range s0 {
				s0[k], s1[k] = s1[k], s0[k]
			}
			j += run
		}
	})
}

// applyCPhase multiplies amplitudes with both bits set by phase, enumerating
// only that quarter of the index space.
func (s *State) applyCPhase(a, b int, phase complex128) {
	both := 1<<uint(a) | 1<<uint(b)
	lowMask, midMask := twoBitMasks(a, b)
	quarter := len(s.amps) / 4
	amps := s.amps
	if lowMask+1 < minRunLen {
		parallelFor(quarter, func(start, end int) {
			for j := start; j < end; j++ {
				i := j&lowMask | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2 | both
				amps[i] *= phase
			}
		})
		return
	}
	parallelFor(quarter, func(start, end int) {
		for j := start; j < end; {
			off := j & lowMask
			base := off | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2 | both
			run := lowMask + 1 - off
			if run > end-j {
				run = end - j
			}
			seg := amps[base : base+run]
			for k := range seg {
				seg[k] *= phase
			}
			j += run
		}
	})
}

// Apply2Q applies the 4x4 matrix m to qubits (q0, q1), q0 the low bit of
// the matrix basis index.
func (s *State) Apply2Q(q0, q1 int, m qmath.Matrix) {
	if m.N != 4 {
		panic("statevec: Apply2Q needs a 4x4 matrix")
	}
	if q0 == q1 || q0 < 0 || q1 < 0 || q0 >= s.n || q1 >= s.n {
		panic(fmt.Sprintf("statevec: bad qubit pair (%d,%d)", q0, q1))
	}
	m0 := 1 << uint(q0)
	m1 := 1 << uint(q1)
	// Iterate over indices with both bits clear by inserting two zero bits.
	lowMask, midMask := twoBitMasks(q0, q1)
	quarter := len(s.amps) / 4
	amps := s.amps
	md := m.Data
	if lowMask+1 < minRunLen {
		// Low qubit too low for worthwhile runs: per-index bit expansion.
		parallelFor(quarter, func(start, end int) {
			for j := start; j < end; j++ {
				base := j&lowMask | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2
				i00 := base
				i01 := base | m0
				i10 := base | m1
				i11 := base | m0 | m1
				a00, a01, a10, a11 := amps[i00], amps[i01], amps[i10], amps[i11]
				amps[i00] = md[0]*a00 + md[1]*a01 + md[2]*a10 + md[3]*a11
				amps[i01] = md[4]*a00 + md[5]*a01 + md[6]*a10 + md[7]*a11
				amps[i10] = md[8]*a00 + md[9]*a01 + md[10]*a10 + md[11]*a11
				amps[i11] = md[12]*a00 + md[13]*a01 + md[14]*a10 + md[15]*a11
			}
		})
		return
	}
	// Consecutive compressed indices below the low qubit map to consecutive
	// amplitude indices, so the four basis slots become four contiguous
	// streams of up to 2^low elements each.
	parallelFor(quarter, func(start, end int) {
		for j := start; j < end; {
			off := j & lowMask
			base := off | (j&midMask)<<1 | (j&^(lowMask|midMask))<<2
			run := lowMask + 1 - off
			if run > end-j {
				run = end - j
			}
			s00 := amps[base : base+run]
			s01 := amps[base+m0 : base+m0+run]
			s10 := amps[base+m1 : base+m1+run]
			s11 := amps[base+m0+m1 : base+m0+m1+run]
			for k := range s00 {
				a00, a01, a10, a11 := s00[k], s01[k], s10[k], s11[k]
				s00[k] = md[0]*a00 + md[1]*a01 + md[2]*a10 + md[3]*a11
				s01[k] = md[4]*a00 + md[5]*a01 + md[6]*a10 + md[7]*a11
				s10[k] = md[8]*a00 + md[9]*a01 + md[10]*a10 + md[11]*a11
				s11[k] = md[12]*a00 + md[13]*a01 + md[14]*a10 + md[15]*a11
			}
			j += run
		}
	})
}

// Apply3Q applies the 8x8 matrix m to qubits (q0, q1, q2), q0 the low bit.
func (s *State) Apply3Q(q0, q1, q2 int, m qmath.Matrix) {
	if m.N != 8 {
		panic("statevec: Apply3Q needs an 8x8 matrix")
	}
	qs := []int{q0, q1, q2}
	masks := make([]uint64, 3)
	for i, q := range qs {
		if q < 0 || q >= s.n {
			panic(fmt.Sprintf("statevec: qubit %d out of range", q))
		}
		masks[i] = uint64(1) << uint(q)
	}
	eighth := len(s.amps) / 8
	amps := s.amps
	var idx [8]uint64
	var vals [8]complex128
	sorted := []int{q0, q1, q2}
	if sorted[0] > sorted[1] {
		sorted[0], sorted[1] = sorted[1], sorted[0]
	}
	if sorted[1] > sorted[2] {
		sorted[1], sorted[2] = sorted[2], sorted[1]
	}
	if sorted[0] > sorted[1] {
		sorted[0], sorted[1] = sorted[1], sorted[0]
	}
	// Serial: 3-qubit gates are rare (CCX in arithmetic circuits) and the
	// scatter/gather buffers above are not shareable across goroutines.
	for i := 0; i < eighth; i++ {
		base := insertZeroBits(uint64(i), sorted)
		for b := 0; b < 8; b++ {
			off := base
			if b&1 != 0 {
				off |= masks[0]
			}
			if b&2 != 0 {
				off |= masks[1]
			}
			if b&4 != 0 {
				off |= masks[2]
			}
			idx[b] = off
			vals[b] = amps[off]
		}
		for row := 0; row < 8; row++ {
			var acc complex128
			mrow := m.Data[row*8 : row*8+8]
			for col := 0; col < 8; col++ {
				acc += mrow[col] * vals[col]
			}
			amps[idx[row]] = acc
		}
	}
}

// insertZeroBits expands i by inserting zero bits at the (sorted ascending)
// positions given, producing an index with those bits clear.
func insertZeroBits(i uint64, sortedPositions []int) uint64 {
	for _, p := range sortedPositions {
		lower := i & (uint64(1)<<uint(p) - 1)
		i = (i>>uint(p))<<uint(p+1) | lower
	}
	return i
}

// Apply applies a gate instance, choosing a fast path when one exists.
func (s *State) Apply(g gate.Gate) {
	switch g.Kind {
	case gate.KindI:
		return
	case gate.KindX:
		s.applyX(g.Qubits[0])
	case gate.KindZ:
		s.applyDiag1q(g.Qubits[0], 1, -1)
	case gate.KindS:
		s.applyDiag1q(g.Qubits[0], 1, 1i)
	case gate.KindSdg:
		s.applyDiag1q(g.Qubits[0], 1, -1i)
	case gate.KindT:
		s.applyDiag1q(g.Qubits[0], 1, cmplx.Exp(1i*math.Pi/4))
	case gate.KindTdg:
		s.applyDiag1q(g.Qubits[0], 1, cmplx.Exp(-1i*math.Pi/4))
	case gate.KindP:
		s.applyDiag1q(g.Qubits[0], 1, cmplx.Exp(complex(0, g.Params[0])))
	case gate.KindRZ:
		t := g.Params[0] / 2
		s.applyDiag1q(g.Qubits[0], cmplx.Exp(complex(0, -t)), cmplx.Exp(complex(0, t)))
	case gate.KindCX:
		s.applyCX(g.Qubits[0], g.Qubits[1])
	case gate.KindCZ:
		s.applyCPhase(g.Qubits[0], g.Qubits[1], -1)
	case gate.KindCP:
		s.applyCPhase(g.Qubits[0], g.Qubits[1], cmplx.Exp(complex(0, g.Params[0])))
	default:
		switch g.Arity() {
		case 1:
			s.Apply1Q(g.Qubits[0], g.Matrix())
		case 2:
			s.Apply2Q(g.Qubits[0], g.Qubits[1], g.Matrix())
		case 3:
			s.Apply3Q(g.Qubits[0], g.Qubits[1], g.Qubits[2], g.Matrix())
		default:
			panic(fmt.Sprintf("statevec: unsupported arity %d", g.Arity()))
		}
	}
}

// ApplyAll applies every gate of the circuit in order.
func (s *State) ApplyAll(gs []gate.Gate) {
	for _, g := range gs {
		s.Apply(g)
	}
}

// Marginal returns the measurement distribution over the listed qubits
// (ascending significance: bit i of the returned index is qubits[i]),
// tracing out the rest. Useful for workloads whose answer lives in a
// sub-register, e.g. Bernstein-Vazirani's data qubits next to its ancilla.
func (s *State) Marginal(qubits []int) []float64 {
	masks := make([]uint64, len(qubits))
	for i, q := range qubits {
		if q < 0 || q >= s.n {
			panic(fmt.Sprintf("statevec: marginal qubit %d out of range", q))
		}
		masks[i] = uint64(1) << uint(q)
	}
	out := make([]float64, 1<<uint(len(qubits)))
	for i, a := range s.amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p == 0 {
			continue
		}
		var idx uint64
		for b, m := range masks {
			if uint64(i)&m != 0 {
				idx |= 1 << uint(b)
			}
		}
		out[idx] += p
	}
	return out
}

// MarginalCounts projects a measurement histogram onto the listed qubits,
// same bit convention as Marginal.
func MarginalCounts(counts map[uint64]int, qubits []int) map[uint64]int {
	out := make(map[uint64]int, len(counts))
	for bits, n := range counts {
		var idx uint64
		for b, q := range qubits {
			if bits>>uint(q)&1 == 1 {
				idx |= 1 << uint(b)
			}
		}
		out[idx] += n
	}
	return out
}
