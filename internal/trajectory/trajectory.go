// Package trajectory implements the baseline multi-shot noisy simulator the
// paper compares against: quantum-trajectory (Monte Carlo wave function)
// simulation that re-executes the full circuit once per shot with freshly
// sampled noise (the (N, 1, ..., 1) simulation tree of Figure 6).
//
// It shares the state-vector engine and noise machinery with TQSim
// (internal/core), so measured speedups isolate the effect of computational
// reuse rather than implementation differences — mirroring the paper's
// methodology of implementing both on the same backend.
package trajectory

import (
	"runtime"
	"sync"
	"time"

	"tqsim/internal/circuit"
	"tqsim/internal/gate"
	"tqsim/internal/noise"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
)

// Result aggregates a multi-shot run.
type Result struct {
	// Counts histograms the sampled outcomes by basis index.
	Counts map[uint64]int
	// Shots is the number of trajectories executed.
	Shots int
	// GateApplications counts every kernel application, including noise
	// operator insertions.
	GateApplications int64
	// StateCopies counts full state-vector copies (the baseline performs
	// one re-initialization per shot, recorded here for comparability).
	StateCopies int64
	// PeakStateBytes is the peak amplitude memory held at any time.
	PeakStateBytes int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Options tunes a baseline run.
type Options struct {
	// Parallelism is the number of concurrent shot workers. Zero or one
	// runs shots sequentially (each shot still uses the engine's internal
	// kernel parallelism for wide registers). This mirrors the paper's
	// Figure 8 parallel-shot study.
	Parallelism int
	// Seed selects the reproducible trajectory stream.
	Seed uint64
}

// runShot executes one trajectory into the provided scratch state and
// returns the sampled (readout-perturbed) outcome and kernel-op count.
func runShot(c *circuit.Circuit, m *noise.Model, st *statevec.State, r *rng.RNG) (uint64, int64) {
	// Reset scratch to |0...0>. ResetZero clears the SoA planes via memclr —
	// the element loop it replaces was measurable at 2^n elements once per
	// shot.
	st.ResetZero()
	var ops int64
	for _, g := range c.Gates {
		if g.Kind != gate.KindI {
			st.Apply(g)
			ops++
		}
		ops += int64(m.ApplyAfterGate(st, g, r))
	}
	out := st.Sample(r)
	out = m.FlipReadout(out, c.NumQubits, r)
	return out, ops
}

// Run simulates `shots` noisy trajectories of circuit c under model m.
func Run(c *circuit.Circuit, m *noise.Model, shots int, opt Options) *Result {
	start := time.Now()
	res := &Result{Counts: make(map[uint64]int), Shots: shots}
	workers := opt.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > shots {
		workers = shots
	}
	if workers > 4*runtime.GOMAXPROCS(0) {
		workers = 4 * runtime.GOMAXPROCS(0)
	}
	root := rng.New(opt.Seed)

	if workers == 1 {
		st := statevec.NewZero(c.NumQubits)
		res.PeakStateBytes = int64(st.Bytes())
		for shot := 0; shot < shots; shot++ {
			r := root.SplitAt(uint64(shot))
			out, ops := runShot(c, m, st, r)
			res.Counts[out]++
			res.GateApplications += ops
			res.StateCopies++
		}
		res.Elapsed = time.Since(start)
		return res
	}

	type partial struct {
		counts map[uint64]int
		ops    int64
		copies int64
	}
	var wg sync.WaitGroup
	parts := make([]partial, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := statevec.NewZero(c.NumQubits)
			p := partial{counts: make(map[uint64]int)}
			for shot := w; shot < shots; shot += workers {
				r := root.SplitAt(uint64(shot))
				out, ops := runShot(c, m, st, r)
				p.counts[out]++
				p.ops += ops
				p.copies++
			}
			parts[w] = p
		}(w)
	}
	wg.Wait()
	for _, p := range parts {
		for k, v := range p.counts {
			res.Counts[k] += v
		}
		res.GateApplications += p.ops
		res.StateCopies += p.copies
	}
	res.PeakStateBytes = int64(workers) * statevec.StateBytes(c.NumQubits)
	res.Elapsed = time.Since(start)
	return res
}

// RunIdeal simulates the noise-free circuit once and samples `shots`
// outcomes from the final state (the ideal flow of Figure 3b).
func RunIdeal(c *circuit.Circuit, shots int, seed uint64) *Result {
	start := time.Now()
	st := statevec.NewZero(c.NumQubits)
	var ops int64
	for _, g := range c.Gates {
		st.Apply(g)
		ops++
	}
	r := rng.New(seed)
	res := &Result{
		Counts:           make(map[uint64]int),
		Shots:            shots,
		GateApplications: ops,
		StateCopies:      1,
		PeakStateBytes:   int64(st.Bytes()),
	}
	for _, out := range st.SampleMany(shots, r) {
		res.Counts[out]++
	}
	res.Elapsed = time.Since(start)
	return res
}

// IdealState returns the noise-free final state of the circuit — the
// reference for fidelity metrics.
func IdealState(c *circuit.Circuit) *statevec.State {
	st := statevec.NewZero(c.NumQubits)
	st.ApplyAll(c.Gates)
	return st
}
