package trajectory

import (
	"math"
	"testing"

	"tqsim/internal/circuit"
	"tqsim/internal/densmat"
	"tqsim/internal/metrics"
	"tqsim/internal/noise"
	"tqsim/internal/observable"
	"tqsim/internal/workloads"
)

func TestIdealRunSamplesFinalState(t *testing.T) {
	c := circuit.New("bell", 2).H(0).CX(0, 1)
	res := RunIdeal(c, 20000, 1)
	if res.Shots != 20000 {
		t.Fatalf("shots %d", res.Shots)
	}
	if res.Counts[1] != 0 || res.Counts[2] != 0 {
		t.Fatalf("impossible outcomes sampled: %v", res.Counts)
	}
	f := float64(res.Counts[0]) / 20000
	if math.Abs(f-0.5) > 0.02 {
		t.Fatalf("outcome frequency %v", f)
	}
}

func TestNoiselessModelMatchesIdeal(t *testing.T) {
	c := workloads.BV(5, workloads.BVSecret(5))
	noisy := Run(c, noise.NewDepolarizing(0, 0), 2000, Options{Seed: 3})
	ideal := RunIdeal(c, 2000, 3)
	di := metrics.FromCounts(ideal.Counts, 1<<5)
	dn := metrics.FromCounts(noisy.Counts, 1<<5)
	if tvd := metrics.TVD(di, dn); tvd > 0.05 {
		t.Fatalf("zero-noise trajectory deviates from ideal: TVD %v", tvd)
	}
}

func TestCountsSumToShots(t *testing.T) {
	c := workloads.BV(6, workloads.BVSecret(6))
	res := Run(c, noise.NewSycamore(), 500, Options{Seed: 7})
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != 500 {
		t.Fatalf("counts sum %d, want 500", total)
	}
	if res.StateCopies != 500 {
		t.Fatalf("state copies %d", res.StateCopies)
	}
	if res.GateApplications < int64(500*c.Len()) {
		t.Fatalf("gate applications %d below %d", res.GateApplications, 500*c.Len())
	}
}

func TestDeterministicBySeed(t *testing.T) {
	c := workloads.QFT(5, true)
	m := noise.NewSycamore()
	a := Run(c, m, 200, Options{Seed: 11})
	b := Run(c, m, 200, Options{Seed: 11})
	if len(a.Counts) != len(b.Counts) {
		t.Fatal("seeded runs differ")
	}
	for k, v := range a.Counts {
		if b.Counts[k] != v {
			t.Fatalf("seeded runs differ at outcome %d", k)
		}
	}
	other := Run(c, m, 200, Options{Seed: 12})
	same := true
	for k, v := range a.Counts {
		if other.Counts[k] != v {
			same = false
			break
		}
	}
	if same && len(a.Counts) > 1 {
		t.Fatal("different seeds produced identical histograms")
	}
}

func TestParallelShotsMatchSequentialDistribution(t *testing.T) {
	c := workloads.BV(6, workloads.BVSecret(6))
	m := noise.NewSycamore()
	seq := Run(c, m, 2000, Options{Seed: 5})
	par := Run(c, m, 2000, Options{Seed: 5, Parallelism: 4})
	// Shot i has its own SplitAt stream, so histograms must be identical.
	for k, v := range seq.Counts {
		if par.Counts[k] != v {
			t.Fatalf("parallel run changed outcome %d: %d vs %d", k, par.Counts[k], v)
		}
	}
}

func TestTrajectoryEnsembleConvergesToDensityMatrix(t *testing.T) {
	// The central correctness property (paper §2.4.1): the trajectory
	// ensemble average approaches the density-matrix solution as N grows.
	c := circuit.New("conv", 3).H(0).CX(0, 1).T(1).CX(1, 2).H(2)
	models := []*noise.Model{
		noise.NewDepolarizing(0.02, 0.05),
		noise.NewAmplitudeDamping(0.05),
		noise.NewPhaseDamping(0.05),
		noise.NewThermalRelaxation(25, 30, 0.5),
	}
	for _, m := range models {
		exact := metrics.NewDist(densmat.Simulate(c, m))
		res := Run(c, m, 40000, Options{Seed: 21, Parallelism: 8})
		emp := metrics.FromCounts(res.Counts, 1<<3)
		if tvd := metrics.TVD(exact, emp); tvd > 0.02 {
			t.Errorf("%s: trajectory ensemble TVD %v from density matrix", m.Name(), tvd)
		}
	}
}

func TestReadoutErrorShiftsDistribution(t *testing.T) {
	c := circuit.New("id", 2).I(0).I(1)
	m := &noise.Model{ModelName: "R", Readout: &noise.Readout{P01: 0.5, P10: 0}}
	res := Run(c, m, 20000, Options{Seed: 9})
	// Each bit flips 0->1 with p=0.5: outcome 3 should appear ~25%.
	f := float64(res.Counts[3]) / 20000
	if math.Abs(f-0.25) > 0.02 {
		t.Fatalf("readout outcome frequency %v", f)
	}
}

func TestIdealStateHelper(t *testing.T) {
	c := circuit.New("x", 2).X(0)
	st := IdealState(c)
	if st.Prob(1) != 1 {
		t.Fatal("IdealState wrong")
	}
}

func TestElapsedAndMemoryAccounting(t *testing.T) {
	c := workloads.BV(6, 1)
	res := Run(c, noise.NewSycamore(), 50, Options{Seed: 1})
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
	if res.PeakStateBytes != int64(16*(1<<6)) {
		t.Fatalf("peak bytes %d", res.PeakStateBytes)
	}
}

func TestRunExpectationConvergesToDensityMatrix(t *testing.T) {
	// The ensemble-averaged observable converges to tr(rho H) — the
	// master-equation equivalence stated in §2.4.1, now for expectation
	// values instead of histograms.
	c := circuit.New("obs", 3).H(0).CX(0, 1).T(1).CX(1, 2).RX(0.3, 2)
	m := noise.NewDepolarizing(0.02, 0.05)
	h := observable.TransverseFieldIsing(3, 1.0, 0.7)

	d := densmat.NewZero(3)
	d.Run(c, m)
	exact := h.ExpectationDensity(d)

	res, err := RunExpectation(c, m, h, 20000, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(res.Stats.Mean - exact); diff > 5*res.Stats.StdErr+0.02 {
		t.Fatalf("ensemble mean %v vs exact %v (stderr %v)",
			res.Stats.Mean, exact, res.Stats.StdErr)
	}
	// Equation 2 shape: quadrupling N halves the standard error.
	small, err := RunExpectation(c, m, h, 5000, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ratio := small.Stats.StdErr / res.Stats.StdErr
	if ratio < 1.5 || ratio > 2.7 {
		t.Fatalf("stderr scaling ratio %v, want ≈2", ratio)
	}
}

func TestRunExpectationRejectsBadObservable(t *testing.T) {
	c := circuit.New("x", 2).X(0)
	h := &observable.Hamiltonian{Terms: []observable.PauliString{
		observable.NewPauliString(1, "Z", 5), // out of range
	}}
	if _, err := RunExpectation(c, noise.NewSycamore(), h, 10, Options{}); err == nil {
		t.Fatal("invalid observable accepted")
	}
}
