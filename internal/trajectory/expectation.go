package trajectory

import (
	"time"

	"tqsim/internal/circuit"
	"tqsim/internal/noise"
	"tqsim/internal/observable"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
)

// ExpectationResult carries an observable estimate from a baseline
// multi-shot run.
type ExpectationResult struct {
	Stats observable.EstimateStats
	// GateApplications and Elapsed mirror Result's accounting.
	GateApplications int64
	Elapsed          time.Duration
}

// RunExpectation runs `shots` noisy trajectories and evaluates the
// observable's exact expectation on each final state. The ensemble mean
// converges to tr(rho H) with standard error sigma/sqrt(N) — the paper's
// Equation 2.
func RunExpectation(c *circuit.Circuit, m *noise.Model, h *observable.Hamiltonian, shots int, opt Options) (*ExpectationResult, error) {
	if err := h.Validate(c.NumQubits); err != nil {
		return nil, err
	}
	start := time.Now()
	root := rng.New(opt.Seed)
	st := statevec.NewZero(c.NumQubits)
	out := &ExpectationResult{}
	values := make([]float64, 0, shots)
	for shot := 0; shot < shots; shot++ {
		r := root.SplitAt(uint64(shot))
		_, ops := runShot(c, m, st, r)
		out.GateApplications += ops
		values = append(values, h.ExpectationState(st))
	}
	out.Stats = observable.Summarize(values)
	out.Elapsed = time.Since(start)
	return out, nil
}
