package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"tqsim/internal/circuit"
	"tqsim/internal/graphs"
	"tqsim/internal/metrics"
	"tqsim/internal/noise"
	"tqsim/internal/observable"
	"tqsim/internal/partition"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
	"tqsim/internal/trajectory"
	"tqsim/internal/workloads"
)

func TestIdealTreeMatchesIdealDistribution(t *testing.T) {
	// Without noise every trajectory is identical, so TQSim's reuse is
	// exact: the outcome distribution must match the ideal state's.
	c := workloads.QFT(6, true)
	plan := partition.FromStructure(c, []int{16, 8, 8}) // 1024 outcomes
	ex := &Executor{Seed: 5}
	res, err := ex.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes != 1024 {
		t.Fatalf("outcomes %d", res.Outcomes)
	}
	ideal := metrics.NewDist(trajectory.IdealState(c).Probabilities())
	emp := metrics.FromCounts(res.Counts, 1<<6)
	// 1024 samples over 64 outcomes: sampling alone gives TVD ≈ 0.09.
	if tvd := metrics.TVD(ideal, emp); tvd > 0.15 {
		t.Fatalf("ideal tree distribution TVD %v", tvd)
	}
}

func TestTreeAccountingMatchesPlan(t *testing.T) {
	c := workloads.QFT(6, true)
	plan := partition.FromStructure(c, []int{4, 2, 2})
	ex := &Executor{Seed: 1} // ideal: no noise ops inflate the count
	res, err := ex.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.GateApplications != plan.GateWork() {
		t.Fatalf("gate applications %d, plan says %d", res.GateApplications, plan.GateWork())
	}
	if res.StateCopies != plan.CopyWork() {
		t.Fatalf("state copies %d, plan says %d", res.StateCopies, plan.CopyWork())
	}
	if res.Nodes != plan.CopyWork() {
		t.Fatalf("nodes %d", res.Nodes)
	}
	wantPeak := int64(plan.Levels()+1) * int64(16*(1<<6))
	if res.PeakStateBytes != wantPeak {
		t.Fatalf("peak bytes %d, want %d", res.PeakStateBytes, wantPeak)
	}
}

func TestNoisyTreeMatchesBaselineFidelity(t *testing.T) {
	// The paper's core accuracy claim (Figure 14): TQSim's normalized
	// fidelity tracks the baseline's within ~0.016 (sampling noise at our
	// scaled-down shot counts widens that band slightly).
	c := workloads.QPE(7, workloads.QPEPhase, true, -1)
	m := noise.NewSycamore()
	shots := 4000
	ideal := metrics.NewDist(trajectory.IdealState(c).Probabilities())

	base := trajectory.Run(c, m, shots, trajectory.Options{Seed: 2, Parallelism: 8})
	baseF := metrics.NormalizedFidelity(ideal, metrics.FromCounts(base.Counts, 1<<8))

	plan := partition.Dynamic(c, m, shots, partition.DCPOptions{CopyCost: 20})
	if plan.Levels() < 2 {
		t.Fatalf("DCP failed to partition: %v", plan.Structure())
	}
	ex := &Executor{Noise: m, Seed: 3}
	res, err := ex.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	tqF := metrics.NormalizedFidelity(ideal, metrics.FromCounts(res.Counts, 1<<8))
	if d := math.Abs(tqF - baseF); d > 0.05 {
		t.Fatalf("fidelity diff %v (baseline %v, tqsim %v, structure %v)",
			d, baseF, tqF, res.Structure)
	}
}

func TestTreeReducesComputation(t *testing.T) {
	c := workloads.QFT(10, true)
	m := noise.NewSycamore()
	shots := 2000
	plan := partition.Dynamic(c, m, shots, partition.DCPOptions{CopyCost: 10})
	ex := &Executor{Noise: m, Seed: 7}
	res, err := ex.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	baseOps := int64(res.Outcomes) * int64(c.Len())
	nc := NormalizedComputation(res, baseOps)
	if nc >= 1 {
		t.Fatalf("tree did not reduce computation: %v", nc)
	}
	if nc < 0.1 {
		t.Fatalf("implausibly low computation %v", nc)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	c := workloads.BV(6, workloads.BVSecret(6))
	m := noise.NewSycamore()
	plan := partition.FromStructure(c, []int{10, 10})
	a, err := (&Executor{Noise: m, Seed: 9}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Executor{Noise: m, Seed: 9}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Counts {
		if b.Counts[k] != v {
			t.Fatalf("seeded tree runs differ at %d", k)
		}
	}
}

func TestRunBaselineEquivalentToTrajectory(t *testing.T) {
	// The executor's (N) plan and the standalone trajectory runner must
	// agree in distribution (seeds differ in structure, so compare TVD).
	c := workloads.BV(6, workloads.BVSecret(6))
	m := noise.NewSycamore()
	ex := &Executor{Noise: m, Seed: 11}
	tree, err := ex.RunBaseline(c, 4000)
	if err != nil {
		t.Fatal(err)
	}
	traj := trajectory.Run(c, m, 4000, trajectory.Options{Seed: 12, Parallelism: 8})
	a := metrics.FromCounts(tree.Counts, 1<<6)
	b := metrics.FromCounts(traj.Counts, 1<<6)
	if tvd := metrics.TVD(a, b); tvd > 0.05 {
		t.Fatalf("executor baseline deviates from trajectory runner: TVD %v", tvd)
	}
}

func TestInvalidPlanRejected(t *testing.T) {
	c := circuit.New("c", 2).H(0)
	bad := &partition.Plan{Circuit: c, Arities: []int{0}}
	if _, err := (&Executor{}).Run(bad); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestProfileCopyCost(t *testing.T) {
	p := ProfileCopyCost(10, 50)
	if p.Ratio <= 0 {
		t.Fatalf("ratio %v", p.Ratio)
	}
	if p.GateNanos <= 0 || p.CopyNanos <= 0 {
		t.Fatalf("timings %v %v", p.GateNanos, p.CopyNanos)
	}
	avg, profiles := ProfileCopyCostSweep(8, 10, 20)
	if len(profiles) != 3 || avg <= 0 {
		t.Fatalf("sweep gave %d profiles, avg %v", len(profiles), avg)
	}
}

func TestSpeedupHelper(t *testing.T) {
	if s := Speedup(200, 100); s != 2 {
		t.Fatalf("speedup %v", s)
	}
	if s := Speedup(100, 0); s != 0 {
		t.Fatalf("zero-duration speedup %v", s)
	}
}

func TestResultString(t *testing.T) {
	c := workloads.BV(4, 1)
	plan := partition.FromStructure(c, []int{2, 2})
	res, err := (&Executor{Seed: 1}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestParallelTreeMatchesSerial(t *testing.T) {
	// The parallel walk pre-assigns the serial DFS sequence numbers, so the
	// histogram must be bit-identical at any worker count.
	c := workloads.QPE(6, workloads.QPEPhase, true, -1)
	m := noise.NewSycamore()
	plan := partition.FromStructure(c, []int{12, 3, 3})
	serial, err := (&Executor{Noise: m, Seed: 17}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 13} {
		par, err := (&Executor{Noise: m, Seed: 17, Parallelism: workers}).Run(plan)
		if err != nil {
			t.Fatal(err)
		}
		if par.Outcomes != serial.Outcomes {
			t.Fatalf("workers=%d: outcomes %d vs %d", workers, par.Outcomes, serial.Outcomes)
		}
		for k, v := range serial.Counts {
			if par.Counts[k] != v {
				t.Fatalf("workers=%d: outcome %d count %d vs %d",
					workers, k, par.Counts[k], v)
			}
		}
		if par.GateApplications != serial.GateApplications ||
			par.StateCopies != serial.StateCopies || par.Nodes != serial.Nodes {
			t.Fatalf("workers=%d: accounting diverged", workers)
		}
	}
}

func TestTreeExpectationTracksBaseline(t *testing.T) {
	// TQSim's leaf-averaged energy must agree with the baseline's
	// trajectory-averaged energy within combined standard errors.
	c := workloads.QAOA(graphsRing(6), []workloads.QAOAParams{{Gamma: 0.6, Beta: 0.4}})
	m := noise.NewSycamore()
	h := observable.MaxCutHamiltonian(6, ringEdges(6))

	base, err := trajectory.RunExpectation(c, m, h, 3000, trajectory.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan := partition.FromStructure(c, []int{50, 8, 8})
	ex := &Executor{Noise: m, Seed: 3, Parallelism: 4}
	tree, err := ex.RunExpectation(plan, h)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Stats.N != 3200 {
		t.Fatalf("leaf count %d", tree.Stats.N)
	}
	diff := math.Abs(tree.Stats.Mean - base.Stats.Mean)
	band := 5*(tree.Stats.StdErr+base.Stats.StdErr) + 0.02
	if diff > band {
		t.Fatalf("tree energy %v vs baseline %v (band %v)",
			tree.Stats.Mean, base.Stats.Mean, band)
	}
	if tree.Run.GateApplications >= int64(tree.Stats.N)*int64(c.Len()) {
		t.Fatal("tree expectation did not reuse computation")
	}
}

// graphsRing/ringEdges avoid an import cycle on the graphs package helper.
func graphsRing(n int) *graphs.Graph { return graphs.Ring(n) }

func ringEdges(n int) [][2]int {
	e := make([][2]int, n)
	for i := 0; i < n; i++ {
		e[i] = [2]int{i, (i + 1) % n}
	}
	return e
}

func TestRunCancellation(t *testing.T) {
	c := workloads.QFT(8, true)
	m := noise.NewSycamore()
	plan := partition.FromStructure(c, []int{64, 8})

	// A pre-cancelled context must stop the run before (or during) the tree
	// walk and surface context.Canceled, never a partial result.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := &Executor{Noise: m, Seed: 3, Parallelism: 2, Context: ctx}
	res, err := ex.Run(plan)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned (%v, %v), want context.Canceled", res, err)
	}
	if res != nil {
		t.Fatal("cancelled run must not expose a partial result")
	}

	// Cancelling mid-run from another goroutine stops the walk early: with
	// the context cancelled after the first leaf, the executor must visit
	// strictly fewer nodes than the full tree has.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	fired := false
	ex2 := &Executor{Noise: m, Seed: 3, Context: ctx2}
	full := plan.CopyWork() // node count of the complete walk
	res2, err2 := ex2.runWithLeafHook(plan, func() {
		if !fired {
			fired = true
			cancel2()
		}
	})
	if !errors.Is(err2, context.Canceled) {
		t.Fatalf("mid-run cancel returned (%v, %v)", res2, err2)
	}
	_ = full
}

// runWithLeafHook runs the plan invoking hook at every leaf — test-only
// plumbing for cancellation-timing tests.
func (e *Executor) runWithLeafHook(plan *partition.Plan, hook func()) (*Result, error) {
	res := &Result{Counts: make(map[uint64]int)}
	err := e.runTree(plan, res, func(worker int) LeafFunc {
		return func(st *statevec.State, be Backend, r *rng.RNG) { hook() }
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
