package core

import (
	"fmt"
	"sort"
	"sync"
)

// Factory constructs a fresh Backend instance. Factories must be cheap: the
// facade builds a new backend per run so stateful backends (fusion buffers,
// stabilizer shadows, cluster views) never leak state between runs.
type Factory func() Backend

// registry maps backend names to factories. Engine packages register
// themselves from init, so any binary importing an engine can select it by
// name; the tqsim facade imports every engine and therefore always sees the
// full set.
var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
	// external names engines that are selectable through the public API but
	// do not plug into the tree executor's gate-apply interface (the exact
	// density-matrix engine runs whole circuits). Values document why.
	external = map[string]string{}
)

// Register installs a gate-apply backend factory under name. Registering a
// duplicate name panics: backend names are part of the public API surface
// and collisions are programmer error.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || f == nil {
		panic("core: Register needs a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: backend %q registered twice", name))
	}
	if _, dup := external[name]; dup {
		panic(fmt.Sprintf("core: backend %q registered twice", name))
	}
	registry[name] = f
}

// RegisterExternal records an engine that is selectable by name through the
// public API but runs through a whole-circuit path outside the tree executor
// (NewBackend returns an error directing callers to that path). note
// documents the engine's execution model for Describe.
func RegisterExternal(name, note string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: backend %q registered twice", name))
	}
	if _, dup := external[name]; dup {
		panic(fmt.Sprintf("core: backend %q registered twice", name))
	}
	external[name] = note
}

// NewBackend constructs the named backend. The empty name selects the plain
// state-vector backend. Unknown names and external (whole-circuit) engines
// return an error listing the valid choices.
func NewBackend(name string) (Backend, error) {
	if name == "" {
		return PlainBackend{}, nil
	}
	registryMu.RLock()
	f, ok := registry[name]
	note, ext := external[name]
	registryMu.RUnlock()
	if ok {
		return f(), nil
	}
	if ext {
		return nil, fmt.Errorf("core: backend %q is not a gate-apply backend (%s)", name, note)
	}
	return nil, fmt.Errorf("core: unknown backend %q (have %v)", name, Backends())
}

// IsExternal reports whether name is a registered whole-circuit engine.
func IsExternal(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := external[name]
	return ok
}

// Backends returns every registered backend name (gate-apply and external),
// sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry)+len(external))
	for name := range registry {
		out = append(out, name)
	}
	for name := range external {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("statevec", func() Backend { return PlainBackend{} })
}
