package core

import (
	"sync"
	"testing"

	"tqsim/internal/partition"
	"tqsim/internal/workloads"
)

// TestForPlanBitwiseEqualsNewPrefixSnapshots: the cache-assembled snapshot
// set must hold exactly the states NewPrefixSnapshots computes — amplitude
// for amplitude — whether boundaries were computed cold or served from
// earlier insertions.
func TestForPlanBitwiseEqualsNewPrefixSnapshots(t *testing.T) {
	c := workloads.QFT(5, true)
	plan := partition.FromStructure(c, []int{8, 4, 4})
	want, err := NewPrefixSnapshots(plan)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSnapshotCache(0)
	for round := 0; round < 2; round++ { // cold assembly, then all-hit assembly
		got, err := sc.ForPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Matches(plan) {
			t.Fatalf("round %d: assembled set does not match the plan", round)
		}
		if len(got.states) != len(want.states) {
			t.Fatalf("round %d: %d states, want %d", round, len(got.states), len(want.states))
		}
		for i := range want.states {
			wa, ga := want.states[i].Amplitudes(), got.states[i].Amplitudes()
			for k := range wa {
				if wa[k] != ga[k] {
					t.Fatalf("round %d: boundary %d amplitude %d differs", round, i, k)
				}
			}
		}
	}
	if sc.Hits() == 0 || sc.Misses() == 0 {
		t.Fatalf("hits %d misses %d: second assembly should hit, first should miss", sc.Hits(), sc.Misses())
	}
}

// TestForPlanSharesCommonPrefixAcrossCircuits: two circuits equal up to a
// boundary share that boundary's cached state even though their suffixes
// (and full-circuit states) differ.
func TestForPlanSharesCommonPrefixAcrossCircuits(t *testing.T) {
	a := workloads.QFT(4, true)
	b := a.Clone()
	b.Name = "variant"
	b.RZ(0.123, 0) // diverge after the shared gates

	bounds := []int{a.Len() / 2}
	planA := &partition.Plan{Circuit: a, Bounds: bounds, Arities: []int{4, 4}, Strategy: "manual"}
	planB := &partition.Plan{Circuit: b, Bounds: bounds, Arities: []int{4, 4}, Strategy: "manual"}

	sc := NewSnapshotCache(0)
	if _, err := sc.ForPlan(planA); err != nil {
		t.Fatal(err)
	}
	h0, m0 := sc.Hits(), sc.Misses()
	if _, err := sc.ForPlan(planB); err != nil {
		t.Fatal(err)
	}
	// Plan B's first boundary (the shared prefix) hits; its final state
	// (different suffix) misses.
	if hits := sc.Hits() - h0; hits != 1 {
		t.Fatalf("shared-prefix assembly booked %d hits, want 1", hits)
	}
	if misses := sc.Misses() - m0; misses != 1 {
		t.Fatalf("shared-prefix assembly booked %d misses, want 1", misses)
	}
}

// TestEvictionKeepsBytesBounded: the cache evicts LRU states beyond the
// byte cap but never evicts the set it is currently inserting.
func TestEvictionKeepsBytesBounded(t *testing.T) {
	per := SnapshotBytes(1, 4) // one 4-qubit boundary state
	sc := NewSnapshotCache(3 * per)
	for i := 0; i < 6; i++ {
		c := workloads.QFT(4, true)
		c.RZ(float64(i)+0.5, 0) // distinct content per iteration
		plan := &partition.Plan{Circuit: c, Bounds: []int{c.Len() / 2}, Arities: []int{4, 4}, Strategy: "manual"}
		if _, err := sc.ForPlan(plan); err != nil {
			t.Fatal(err)
		}
		if sc.Bytes() > 3*per && sc.Len() > 2 {
			t.Fatalf("iteration %d: %d bytes resident over the %d cap", i, sc.Bytes(), 3*per)
		}
	}
	if sc.Len() < 2 {
		t.Fatalf("cache over-evicted: %d states resident", sc.Len())
	}
}

// TestForPlanConcurrent exercises assembly under the race detector: many
// goroutines over plans sharing prefixes, against a small byte cap so
// eviction runs concurrently with lookups.
func TestForPlanConcurrent(t *testing.T) {
	base := workloads.QFT(4, true)
	sc := NewSnapshotCache(4 * SnapshotBytes(1, 4))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				c := base.Clone()
				c.RZ(float64((g+i)%5)+0.25, 0)
				plan := &partition.Plan{Circuit: c, Bounds: []int{base.Len() / 2}, Arities: []int{4, 4}, Strategy: "manual"}
				ps, err := sc.ForPlan(plan)
				if err != nil {
					t.Error(err)
					return
				}
				if !ps.Matches(plan) {
					t.Error("assembled set does not match plan")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
