package core

import (
	"time"

	"tqsim/internal/gate"

	"tqsim/internal/statevec"
)

// CopyCostProfile reports how expensive a state-vector copy is relative to
// one gate application on this host — the normalization of Figure 10. DCP
// consumes the ratio to choose the minimum subcircuit length.
type CopyCostProfile struct {
	// Qubits is the register width profiled.
	Qubits int
	// GateNanos is the mean wall time of one representative gate kernel.
	GateNanos float64
	// CopyNanos is the mean wall time of one full state copy.
	CopyNanos float64
	// Ratio is CopyNanos / GateNanos — the state copy cost in
	// gate-equivalents.
	Ratio float64
}

// ProfileCopyCost measures the copy/gate cost ratio at the given width
// using `reps` repetitions of a representative gate mix (one Hadamard and
// one CNOT, the dominant kernels of the benchmark suite).
func ProfileCopyCost(qubits, reps int) CopyCostProfile {
	if reps < 1 {
		reps = 1
	}
	st := statevec.NewZero(qubits)
	// Seed the state with structure so kernels see realistic data.
	for q := 0; q < qubits; q++ {
		st.Apply(gate.New(gate.KindH, q))
	}
	h := gate.New(gate.KindH, 0)
	cx := gate.New(gate.KindCX, 0, qubits-1)

	gStart := time.Now()
	for i := 0; i < reps; i++ {
		st.Apply(h)
		st.Apply(cx)
	}
	gateNanos := float64(time.Since(gStart).Nanoseconds()) / float64(2*reps)

	dst := statevec.NewZero(qubits)
	cStart := time.Now()
	for i := 0; i < reps; i++ {
		dst.CopyFrom(st)
	}
	copyNanos := float64(time.Since(cStart).Nanoseconds()) / float64(reps)

	ratio := 1.0
	if gateNanos > 0 {
		ratio = copyNanos / gateNanos
	}
	if ratio < 0.1 {
		ratio = 0.1
	}
	return CopyCostProfile{
		Qubits:    qubits,
		GateNanos: gateNanos,
		CopyNanos: copyNanos,
		Ratio:     ratio,
	}
}

// ProfileCopyCostSweep profiles a range of widths and returns the averaged
// ratio alongside the per-width profiles. The paper observes the ratio is
// width-stable (Section 3.6), so DCP uses the average.
func ProfileCopyCostSweep(minQubits, maxQubits, reps int) (avg float64, profiles []CopyCostProfile) {
	var sum float64
	for q := minQubits; q <= maxQubits; q++ {
		p := ProfileCopyCost(q, reps)
		profiles = append(profiles, p)
		sum += p.Ratio
	}
	if len(profiles) == 0 {
		return 1, nil
	}
	return sum / float64(len(profiles)), profiles
}
