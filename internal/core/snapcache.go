package core

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"tqsim/internal/gate"
	"tqsim/internal/partition"
	"tqsim/internal/statevec"
)

// SnapshotCache is a byte-bounded, cross-job cache of ideal boundary
// states — the promotion of PrefixSnapshots from sweep-scoped to
// service-scoped reuse. Entries are keyed per boundary by the structural
// digest of the gate prefix before it (circuit.PrefixDigests), not by whole
// plans: the ideal state at gate boundary b is a pure function of (width,
// gates[0:b]), so any two jobs whose circuits share a gate prefix share the
// cached state at every common plan boundary, even when their suffixes,
// names, noise points, shot counts or deeper bounds differ. ForPlan
// assembles a plan's full PrefixSnapshots set from cached states, computing
// and inserting only the missing boundaries.
//
// Cached states are read-only shared: the executor's prefix-reuse path
// never mutates them (the same contract the sweep engine established), so
// one state may back any number of concurrent runs. Eviction only drops the
// cache's reference — snapshot sets already handed out stay valid.
//
// The hit/miss counters are served in tqsimd's /v1/stats as snapshot_hits /
// snapshot_misses; they count boundary states, not plans, so a 4-level plan
// assembled entirely from cache books 4 hits.
type SnapshotCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    atomic.Int64
	ll       *list.List // front = most recently used
	m        map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type snapEntry struct {
	key   string
	st    *statevec.State
	bytes int64
}

// NewSnapshotCache returns a cache holding at most maxBytes of boundary
// states (least-recently-used states are evicted beyond it). maxBytes <= 0
// selects an effectively unbounded cache.
func NewSnapshotCache(maxBytes int64) *SnapshotCache {
	return &SnapshotCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		m:        make(map[string]*list.Element),
	}
}

// Hits returns the number of boundary states served from cache.
func (sc *SnapshotCache) Hits() uint64 { return sc.hits.Load() }

// Misses returns the number of boundary states that had to be computed.
func (sc *SnapshotCache) Misses() uint64 { return sc.misses.Load() }

// Bytes returns the resident state bytes.
func (sc *SnapshotCache) Bytes() int64 { return sc.bytes.Load() }

// Len returns the resident state count.
func (sc *SnapshotCache) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.ll.Len()
}

// ForPlan returns a PrefixSnapshots set for the plan, serving every
// boundary state it can from cache and computing only the missing ones
// (each computed state is inserted for the next job). The assembled set
// satisfies Matches(plan) and is bitwise equal to NewPrefixSnapshots(plan):
// gates are applied in the same per-gate order with the same plain dense
// kernels, so reuse stays histogram-preserving. Safe for concurrent use;
// two racing callers may compute the same boundary twice, but the states
// are deterministic, so either insert is correct.
func (sc *SnapshotCache) ForPlan(plan *partition.Plan) (*PrefixSnapshots, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	n := plan.Circuit.NumQubits
	if n > statevec.MaxQubits {
		return nil, fmt.Errorf("core: %d qubits exceeds the %d-qubit dense snapshot limit", n, statevec.MaxQubits)
	}
	cuts := append(append([]int(nil), plan.Bounds...), plan.Circuit.Len())
	keys := plan.Circuit.PrefixDigests(cuts)

	states := make([]*statevec.State, len(cuts))
	sc.mu.Lock()
	for i, key := range keys {
		if el, ok := sc.m[key]; ok {
			sc.ll.MoveToFront(el)
			states[i] = el.Value.(*snapEntry).st
		}
	}
	sc.mu.Unlock()

	// Compute the gaps outside the lock: each missing boundary continues
	// from the nearest earlier state (cached ones are read-only, so the
	// accumulator clones before extending past them).
	var st *statevec.State
	computed := false
	prev := 0
	for i, cut := range cuts {
		if states[i] != nil {
			sc.hits.Add(1)
			st, prev = nil, cut
			continue
		}
		sc.misses.Add(1)
		computed = true
		if st == nil {
			if i == 0 {
				st = statevec.NewZero(n)
			} else {
				st = states[i-1].Clone()
			}
		}
		for _, g := range plan.Circuit.Gates[prev:cut] {
			if g.Kind != gate.KindI {
				st.Apply(g)
			}
		}
		states[i] = st.Clone()
		prev = cut
	}
	if computed {
		sc.insert(keys, states)
	}

	return &PrefixSnapshots{n: n, bounds: append([]int(nil), plan.Bounds...), states: states}, nil
}

// insert adds the boundary states under their keys, refreshing ones that
// raced in meanwhile, then evicts least-recently-used states over the byte
// cap.
func (sc *SnapshotCache) insert(keys []string, states []*statevec.State) {
	per := SnapshotBytes(1, states[0].NumQubits())
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for i, key := range keys {
		if el, ok := sc.m[key]; ok {
			sc.ll.MoveToFront(el)
			continue
		}
		sc.m[key] = sc.ll.PushFront(&snapEntry{key: key, st: states[i], bytes: per})
		sc.bytes.Add(per)
	}
	for sc.maxBytes > 0 && sc.bytes.Load() > sc.maxBytes && sc.ll.Len() > len(keys) {
		back := sc.ll.Back()
		e := back.Value.(*snapEntry)
		sc.ll.Remove(back)
		delete(sc.m, e.key)
		sc.bytes.Add(-e.bytes)
	}
}
