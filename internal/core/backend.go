// Package core implements the paper's primary contribution: the tree-based
// noisy quantum circuit simulator (TQSim). A partition.Plan describes the
// simulation tree — subcircuit boundaries plus the per-level arity sequence
// (A0, ..., Ak-1) — and the Executor walks the tree depth-first, reusing
// each node's intermediate state across all of its children instead of
// recomputing the shared prefix per shot, exactly as in Figures 2c and 7.
//
// The executor is backend-agnostic (Section 5.2): anything implementing
// Backend can apply gates, so the same scheduler drives the plain
// state-vector engine and the fusion ("GPU-like") engine.
package core

import (
	"tqsim/internal/gate"
	"tqsim/internal/noise"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
)

// Backend applies gates to state vectors. Implementations may buffer and
// fuse gates; Flush must force all pending work onto the state, and is
// called before any operation that observes amplitudes (noise channels,
// sampling, state copies).
type Backend interface {
	// Name identifies the backend in reports.
	Name() string
	// Apply schedules gate g onto state s.
	Apply(s *statevec.State, g gate.Gate)
	// Flush applies any buffered gates to s.
	Flush(s *statevec.State)
}

// Forker is implemented by stateful backends that need one instance per
// worker under parallel tree execution. Stateless backends may ignore it.
type Forker interface {
	// Fork returns a fresh backend equivalent to this one for use by one
	// worker goroutine.
	Fork() Backend
}

// StateShadow is implemented by backends that track some states in a cheaper
// hidden representation than dense amplitudes — e.g. the stabilizer backend
// shadows Clifford-reachable states with CHP tableaux, turning O(2^n) gate
// and copy work into O(n^2). The executor routes state lifecycle events
// (zero-initialization, inter-node copies, leaf sampling) through this
// interface so a shadowed state is only materialized when something truly
// needs amplitudes (a non-Clifford gate, a noise channel, an observable).
//
// Contract: for a StateShadow backend, Flush(st) must materialize st's dense
// amplitudes (dropping the shadow); the executor calls it before noise
// channels and observable evaluation. States not bound via BindZero or
// CopyState are plain dense states and all methods must degrade to the
// dense behavior for them.
type StateShadow interface {
	// BindZero declares st to be |0...0> and may begin shadowing it. It is
	// called once per run per worker on the worker's root state, and resets
	// any shadow bookkeeping from prior runs of the same backend instance.
	BindZero(st *statevec.State)
	// CopyState overwrites dst with src, shadow included. When src is
	// shadowed the implementation may skip the dense copy entirely.
	CopyState(dst, src *statevec.State)
	// SampleState draws one measurement outcome from st without forcing a
	// dense materialization when a shadow can sample directly.
	SampleState(st *statevec.State, r *rng.RNG) uint64
	// ApplyNoise applies the model's post-gate channels for g on the
	// shadow representation when both the shadow is live and the model is
	// expressible there (e.g. Pauli channels on a tableau), returning the
	// kernel-op count and handled=true. handled=false means no randomness
	// was consumed and the executor must materialize and run the dense
	// channels. Implementations must consume the RNG exactly as the dense
	// channels would, so a later materialization continues the identical
	// trajectory.
	ApplyNoise(st *statevec.State, g gate.Gate, m *noise.Model, r *rng.RNG) (ops int, handled bool)
}

// PlainBackend applies every gate immediately through the state-vector
// fast-path kernels. It is stateless, so one value serves any number of
// workers. It is the Qulacs-equivalent CPU backend.
type PlainBackend struct{}

// Name implements Backend.
func (PlainBackend) Name() string { return "statevec" }

// Apply implements Backend.
func (PlainBackend) Apply(s *statevec.State, g gate.Gate) { s.Apply(g) }

// Flush implements Backend.
func (PlainBackend) Flush(*statevec.State) {}
