// Package core implements the paper's primary contribution: the tree-based
// noisy quantum circuit simulator (TQSim). A partition.Plan describes the
// simulation tree — subcircuit boundaries plus the per-level arity sequence
// (A0, ..., Ak-1) — and the Executor walks the tree depth-first, reusing
// each node's intermediate state across all of its children instead of
// recomputing the shared prefix per shot, exactly as in Figures 2c and 7.
//
// The executor is backend-agnostic (Section 5.2): anything implementing
// Backend can apply gates, so the same scheduler drives the plain
// state-vector engine and the fusion ("GPU-like") engine.
package core

import (
	"tqsim/internal/gate"
	"tqsim/internal/statevec"
)

// Backend applies gates to state vectors. Implementations may buffer and
// fuse gates; Flush must force all pending work onto the state, and is
// called before any operation that observes amplitudes (noise channels,
// sampling, state copies).
type Backend interface {
	// Name identifies the backend in reports.
	Name() string
	// Apply schedules gate g onto state s.
	Apply(s *statevec.State, g gate.Gate)
	// Flush applies any buffered gates to s.
	Flush(s *statevec.State)
}

// Forker is implemented by stateful backends that need one instance per
// worker under parallel tree execution. Stateless backends may ignore it.
type Forker interface {
	// Fork returns a fresh backend equivalent to this one for use by one
	// worker goroutine.
	Fork() Backend
}

// PlainBackend applies every gate immediately through the state-vector
// fast-path kernels. It is stateless, so one value serves any number of
// workers. It is the Qulacs-equivalent CPU backend.
type PlainBackend struct{}

// Name implements Backend.
func (PlainBackend) Name() string { return "statevec" }

// Apply implements Backend.
func (PlainBackend) Apply(s *statevec.State, g gate.Gate) { s.Apply(g) }

// Flush implements Backend.
func (PlainBackend) Flush(*statevec.State) {}
