package core_test

import (
	"testing"

	"tqsim/internal/core"
	"tqsim/internal/fusion"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
	"tqsim/internal/workloads"
)

// These tests live in an external test package: fusion imports core (for
// the Backend/Forker interfaces), so importing fusion from core's internal
// tests would create a cycle.

func TestFusionBackendMatchesPlain(t *testing.T) {
	// Same plan, same seed: the fusion backend must produce the identical
	// histogram (it changes scheduling, not semantics).
	c := workloads.QSC(6, 4, 3)
	m := noise.NewSycamore()
	plan := partition.FromStructure(c, []int{8, 4})
	plain, err := (&core.Executor{Noise: m, Seed: 4}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := (&core.Executor{Noise: m, Seed: 4, Backend: fusion.New()}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range plain.Counts {
		if fused.Counts[k] != v {
			t.Fatalf("fusion backend changed outcome %d: %d vs %d",
				k, fused.Counts[k], v)
		}
	}
	if fused.BackendName != "fusion" {
		t.Fatalf("backend name %q", fused.BackendName)
	}
}

func TestParallelFusionBackendForks(t *testing.T) {
	// A stateful backend must be forked per worker; the parallel fusion run
	// must match the serial fusion run exactly (and not race — run under
	// -race in CI).
	c := workloads.QSC(6, 5, 11)
	m := noise.NewSycamore()
	plan := partition.FromStructure(c, []int{16, 4})
	serial, err := (&core.Executor{Noise: m, Seed: 21, Backend: fusion.New()}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&core.Executor{Noise: m, Seed: 21, Backend: fusion.New(), Parallelism: 4}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range serial.Counts {
		if par.Counts[k] != v {
			t.Fatalf("parallel fusion changed outcome %d: %d vs %d", k, par.Counts[k], v)
		}
	}
}
