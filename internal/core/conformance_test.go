package core_test

// Cross-backend differential conformance suite: every registered engine
// runs a shared workload set at fixed seeds and is held to its strongest
// checkable agreement with the PlainBackend reference.
//
// Conformance tiers (strongest applicable tier is asserted per backend):
//
//   - exact: byte-identical histograms to the reference at every
//     parallelism. Applies to engines that execute the reference's kernels
//     (or bitwise-equivalent arithmetic) and sample through the same
//     cumulative scan: fusion, cluster, and the hybrid stabilizer adapter
//     on circuits whose Clifford prefix hands off before sampling.
//   - distributional: the engine samples the same outcome distribution
//     through a different sampler (tableau measurement, exact
//     density-matrix distribution), so realizations differ; the suite
//     bounds the total-variation distance at the statistical scale of the
//     outcome budget, and separately pins exact determinism (identical
//     histograms across parallelism 0/1/8 and across repeated runs).
//
// Amplitude-level agreement of the tableau -> dense conversion (the 1e-12
// tier) is covered by internal/stabilizer's TestWriteStateMatchesDense.
//
// These tests live in an external test package: the engine packages import
// core for the Backend interfaces, so importing them from core's internal
// tests would cycle.

import (
	"math"
	"testing"

	"tqsim"
	"tqsim/internal/circuit"
	"tqsim/internal/cluster"
	"tqsim/internal/core"
	"tqsim/internal/densmat"
	"tqsim/internal/fusion"
	"tqsim/internal/metrics"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
	"tqsim/internal/stabilizer"
	"tqsim/internal/trajectory"
	"tqsim/internal/workloads"
)

// The facade import links every engine registration (densmat registers
// through the facade to avoid an import cycle) and provides the
// public-API-level conformance entry point.
var _ = tqsim.Backends

// conformanceParallelisms are the worker settings every backend is run at.
var conformanceParallelisms = []int{0, 1, 8}

// conformanceCase is one workload x noise cell of the suite grid.
type conformanceCase struct {
	name  string
	c     *circuit.Circuit
	m     *noise.Model
	plan  []int
	exact bool // hybrid stabilizer adapter reaches the exact tier here
}

func conformanceCases() []conformanceCase {
	return []conformanceCase{
		// Clifford-only: the stabilizer adapter shadows everything and
		// samples by tableau — distributional tier for it.
		{name: "bv6_ideal", c: workloads.BV(6, workloads.BVSecret(6)), m: nil,
			plan: []int{24, 4}},
		{name: "clifford6_dc", c: workloads.Clifford(6, 4, 5), m: noise.NewSycamore(),
			plan: []int{24, 4}},
		// Clifford prefix + non-Clifford tail: handoff happens before
		// sampling, so even the stabilizer adapter is exact.
		{name: "cliffpfx6_ideal", c: workloads.CliffordPrefix(6, 3, 7), m: nil,
			plan: []int{24, 4}, exact: true},
		// Non-Clifford from gate one (H then CP): immediate handoff.
		{name: "qft6_dc", c: workloads.QFT(6, true), m: noise.NewSycamore(),
			plan: []int{16, 4}, exact: true},
		// Supremacy-style random circuit under readout noise.
		{name: "qsc6_dcr", c: workloads.QSC(6, 4, 9), m: noise.NewSycamore().WithReadout(0.02),
			plan: []int{16, 4}, exact: true},
		// Three-qubit gates (CCX): exercises the cluster backend's
		// wide-gate fallback and the adder class.
		{name: "adder_dc", c: workloads.Adder(2, 2, 3, -1), m: noise.NewSycamore(),
			plan: []int{16, 2, 2}},
	}
}

// runBackend executes the case on the named backend at the given
// parallelism through the shared executor.
func runConformance(t *testing.T, cc conformanceCase, be core.Backend, par int) *core.Result {
	t.Helper()
	plan := partition.FromStructure(cc.c, cc.plan)
	res, err := (&core.Executor{
		Backend:     be,
		Noise:       cc.m,
		Seed:        1234,
		Parallelism: par,
	}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes != plan.TotalOutcomes() {
		t.Fatalf("%s: outcomes %d, want %d", cc.name, res.Outcomes, plan.TotalOutcomes())
	}
	return res
}

func requireSameCounts(t *testing.T, ctx string, want, got map[uint64]int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: histogram support %d vs %d", ctx, len(want), len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: outcome %d: %d vs %d", ctx, k, v, got[k])
		}
	}
}

// TestConformanceGateApplyBackends drives every gate-apply backend across
// the workload grid and parallelism settings against the PlainBackend
// reference.
func TestConformanceGateApplyBackends(t *testing.T) {
	type engine struct {
		name  string
		fresh func() core.Backend
		exact bool // exact on every case, not only handoff cases
	}
	engines := []engine{
		{"fusion", func() core.Backend { return fusion.New() }, true},
		{"cluster", func() core.Backend { return cluster.NewBackend(4) }, true},
		{"cluster8", func() core.Backend { return cluster.NewBackend(8) }, true},
		{"stabilizer", func() core.Backend { return stabilizer.NewBackend() }, false},
	}
	for _, cc := range conformanceCases() {
		ref := runConformance(t, cc, core.PlainBackend{}, 0)
		// The reference itself must be parallelism-invariant.
		for _, par := range conformanceParallelisms[1:] {
			requireSameCounts(t, cc.name+"/statevec-par",
				ref.Counts, runConformance(t, cc, core.PlainBackend{}, par).Counts)
		}
		for _, eng := range engines {
			var first *core.Result
			for _, par := range conformanceParallelisms {
				res := runConformance(t, cc, eng.fresh(), par)
				if first == nil {
					first = res
					if eng.exact || cc.exact {
						requireSameCounts(t, cc.name+"/"+eng.name, ref.Counts, res.Counts)
					} else if tv := metrics.TVDCounts(ref.Counts, res.Counts, ref.Outcomes); tv > 0.25 {
						t.Fatalf("%s/%s: total variation %.3f vs reference",
							cc.name, eng.name, tv)
					}
					continue
				}
				// Parallelism invariance is exact for every engine.
				requireSameCounts(t, cc.name+"/"+eng.name+"-par", first.Counts, res.Counts)
			}
			// Repeatability: a second identical run is byte-identical.
			requireSameCounts(t, cc.name+"/"+eng.name+"-repeat",
				first.Counts, runConformance(t, cc, eng.fresh(), 0).Counts)
		}
	}
}

// TestConformanceRegistryComplete pins the registered engine set: the five
// engines of the public API must all be present.
func TestConformanceRegistryComplete(t *testing.T) {
	want := []string{"cluster", "densmat", "fusion", "stabilizer", "statevec"}
	have := map[string]bool{}
	for _, name := range core.Backends() {
		have[name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Fatalf("backend %q not registered (have %v)", name, core.Backends())
		}
	}
	for _, name := range []string{"statevec", "fusion", "cluster", "stabilizer"} {
		be, err := core.NewBackend(name)
		if err != nil {
			t.Fatalf("NewBackend(%s): %v", name, err)
		}
		if be.Name() != name {
			t.Fatalf("NewBackend(%s) reports name %q", name, be.Name())
		}
	}
	if _, err := core.NewBackend("densmat"); err == nil {
		t.Fatal("densmat should not construct a gate-apply backend")
	}
	if !core.IsExternal("densmat") {
		t.Fatal("densmat should be registered external")
	}
	if _, err := core.NewBackend("no-such-engine"); err == nil {
		t.Fatal("unknown names must error")
	}
}

// TestConformanceDensmat holds the exact engine to its two obligations:
// its ideal-circuit distribution must match the dense engine's amplitudes
// to 1e-12, and its sampled noisy histograms must sit within the
// statistical scale of the trajectory reference while being exactly
// deterministic and parallelism-independent.
func TestConformanceDensmat(t *testing.T) {
	// Amplitude tier: exact distribution vs dense probabilities, ideal.
	c := workloads.QFT(6, true)
	probs := densmat.Simulate(c, nil)
	dense := trajectory.IdealState(c).Probabilities()
	for i := range probs {
		if math.Abs(probs[i]-dense[i]) > 1e-12 {
			t.Fatalf("ideal distribution diverges at %d: %g vs %g", i, probs[i], dense[i])
		}
	}
	// Distribution tier under noise, via the public API.
	m := noise.NewSycamore()
	cl := workloads.Clifford(6, 4, 5)
	ref, err := tqsim.RunBackend(cl, m, 4096, tqsim.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var first map[uint64]int
	for _, par := range conformanceParallelisms {
		res, err := tqsim.RunBackend(cl, m, 4096, tqsim.Options{
			Seed: 7, Backend: "densmat", Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.BackendName != "densmat" {
			t.Fatalf("backend name %q", res.BackendName)
		}
		if first == nil {
			first = res.Counts
			if tv := metrics.TVDCounts(ref.Counts, res.Counts, ref.Outcomes); tv > 0.2 {
				t.Fatalf("densmat vs trajectory: total variation %.3f", tv)
			}
			continue
		}
		requireSameCounts(t, "densmat-par", first, res.Counts)
	}
	// Fidelity agreement: both engines must score the same normalized
	// fidelity against the ideal distribution to within sampling noise.
	ideal := metrics.NewDist(trajectory.IdealState(cl).Probabilities())
	fRef := metrics.NormalizedFidelity(ideal, metrics.FromCounts(ref.Counts, 1<<6))
	fDm := metrics.NormalizedFidelity(ideal, metrics.FromCounts(first, 1<<6))
	if math.Abs(fRef-fDm) > 0.05 {
		t.Fatalf("fidelity diverges: trajectory %.4f vs densmat %.4f", fRef, fDm)
	}
}

// TestConformanceStabilizerTreeVsExecutor cross-checks the pure-tableau
// tree runner (the wide-register path) against the dense executor on the
// same plan, distributionally, plus exact parallelism invariance.
func TestConformanceStabilizerTreeVsExecutor(t *testing.T) {
	c := workloads.Clifford(7, 5, 13)
	m := noise.NewSycamore()
	plan := partition.FromStructure(c, []int{64, 8})
	dense, err := (&core.Executor{Noise: m, Seed: 77}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	var first *core.Result
	for _, par := range conformanceParallelisms {
		res, err := stabilizer.RunTree(plan, m, 77, par)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			if tv := metrics.TVDCounts(dense.Counts, res.Counts, dense.Outcomes); tv > 0.25 {
				t.Fatalf("tableau tree vs dense executor: total variation %.3f", tv)
			}
			continue
		}
		requireSameCounts(t, "stabilizer-tree-par", first.Counts, res.Counts)
	}
}
