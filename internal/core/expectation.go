package core

import (
	"time"

	"tqsim/internal/observable"
	"tqsim/internal/partition"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
)

// ExpectationResult carries an observable estimate from a tree run: the
// ensemble mean over leaves plus the paper's Equation 2 standard error.
type ExpectationResult struct {
	Stats observable.EstimateStats
	// Run carries the usual cost accounting (Counts remains empty; leaves
	// are consumed by the observable instead of sampled).
	Run *Result
}

// RunExpectation executes the plan's simulation tree and evaluates the
// observable's exact expectation on every leaf state — the variational-
// algorithm workflow of the paper's §5.7, where each landscape point is an
// ensemble-averaged energy.
func (e *Executor) RunExpectation(plan *partition.Plan, h *observable.Hamiltonian) (*ExpectationResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if err := h.Validate(plan.Circuit.NumQubits); err != nil {
		return nil, err
	}
	be := e.Backend
	if be == nil {
		be = PlainBackend{}
	}
	res := &Result{
		Counts:      make(map[uint64]int),
		Structure:   plan.Structure(),
		BackendName: be.Name(),
	}
	// Per-worker value accumulation, concatenated in worker order after the
	// walk — no lock on the leaf path, and a reproducible value order for a
	// given parallelism (the old mutex design appended in whatever order
	// workers reached the lock).
	workerValues := make([][]float64, e.treeWorkers(plan))
	start := time.Now()
	err := e.runTree(plan, res, func(worker int) LeafFunc {
		return func(st *statevec.State, be Backend, r *rng.RNG) {
			// Observables need amplitudes: force shadow backends to
			// materialize the leaf (no-op for the rest — runSegment already
			// flushed buffering backends).
			if _, ok := be.(StateShadow); ok {
				be.Flush(st)
			}
			workerValues[worker] = append(workerValues[worker], h.ExpectationState(st))
		}
	})
	if err != nil {
		return nil, err
	}
	var values []float64
	for _, vs := range workerValues {
		values = append(values, vs...)
		res.Outcomes += len(vs)
	}
	res.Elapsed = time.Since(start)
	return &ExpectationResult{
		Stats: observable.Summarize(values),
		Run:   res,
	}, nil
}
