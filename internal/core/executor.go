package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"tqsim/internal/circuit"
	"tqsim/internal/gate"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
	"tqsim/internal/rng"
	"tqsim/internal/statevec"
)

// Result aggregates a TQSim tree run. The accounting fields mirror
// trajectory.Result so baseline and TQSim runs compare directly.
type Result struct {
	// Counts histograms sampled outcomes by basis index. Every tree leaf
	// contributes exactly one outcome, so the total equals the plan's
	// TotalOutcomes.
	Counts map[uint64]int
	// Outcomes is the number of samples produced (tree leaves).
	Outcomes int
	// GateApplications counts every kernel application, noise included.
	GateApplications int64
	// StateCopies counts full state-vector copies between tree nodes —
	// the overhead DCP balances against reuse (Section 3.6).
	StateCopies int64
	// PeakStateBytes is the peak amplitude memory held concurrently: one
	// state per tree level plus the working copy (Section 3.4's
	// memory-for-time trade).
	PeakStateBytes int64
	// Nodes is the number of subcircuit-instance nodes executed.
	Nodes int64
	// PrefixReuseHits counts nodes served from shared ideal-prefix
	// snapshots: their segment drew no firing noise channel from a parent
	// still on the ideal trajectory, so the gate work was skipped entirely
	// and the cached boundary state stood in (see PrefixSnapshots). Always
	// zero when Executor.Prefix is nil.
	PrefixReuseHits int64
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
	// Structure echoes the plan's arity tuple, e.g. "(16,2,2)".
	Structure string
	// BackendName echoes the backend used.
	BackendName string
}

// Executor runs simulation-tree plans.
type Executor struct {
	// Backend applies gates; nil selects PlainBackend.
	Backend Backend
	// Noise is the noise model; nil simulates the ideal circuit (every
	// trajectory is then identical, which makes reuse exact).
	Noise *noise.Model
	// Seed selects the reproducible trajectory stream.
	Seed uint64
	// Parallelism distributes first-level subtrees across workers
	// (<= 1 runs serially). Outcomes are seed-deterministic either way.
	Parallelism int
	// Context, when non-nil, cancels the run cooperatively: every worker
	// checks it once per tree node (a node is O(2^n) kernel work, so the
	// check granularity is coarse enough to be free and fine enough to stop
	// within one subcircuit instance). A cancelled run returns ctx.Err()
	// and no result — partial histograms are never exposed, because a
	// partially executed tree is not a sample from any defined distribution.
	Context context.Context
	// Prefix, when non-nil and matching the plan, enables ideal-prefix
	// reuse: a node whose parent is still on the ideal trajectory dry-runs
	// its segment's noise draws (noise.Model.SegmentFires, RNG-identical to
	// the real path) and, when no channel fires, skips the gate work and
	// adopts the shared boundary snapshot. Histograms are byte-identical
	// with or without it — only the work accounting changes. The hook is
	// consulted only for the plain dense backend under Pauli-only noise;
	// shadow, buffering and sharded backends ignore it.
	Prefix *PrefixSnapshots
}

// cancelled reports whether the executor's context (if any) is done.
func (e *Executor) cancelled() bool {
	return e.Context != nil && e.Context.Err() != nil
}

// runSegment applies one subcircuit instance with fresh noise sampling.
func (e *Executor) runSegment(st *statevec.State, be Backend, gs []gate.Gate, r *rng.RNG) int64 {
	var ops int64
	shadow, shadowed := be.(StateShadow)
	for _, g := range gs {
		if g.Kind != gate.KindI {
			be.Apply(st, g)
			ops++
		}
		if !e.Noise.Ideal() {
			// Shadow backends get first refusal: Pauli channels land on the
			// tableau (with dense-identical RNG consumption), keeping the
			// Clifford fast path alive through noisy segments. Anything the
			// shadow cannot express materializes and runs densely.
			if shadowed {
				if n, handled := shadow.ApplyNoise(st, g, e.Noise, r); handled {
					ops += int64(n)
					continue
				}
			}
			be.Flush(st)
			ops += int64(e.Noise.ApplyAfterGate(st, g, r))
		}
	}
	// Shadow backends keep the state in its cheap representation across the
	// segment boundary: copies and sampling go through StateShadow, so no
	// dense amplitudes are needed here. Buffering backends (fusion) must
	// flush before the state is copied or sampled.
	if !shadowed {
		be.Flush(st)
	}
	return ops
}

// copyState copies src into dst through the backend, so shadow backends can
// clone their cheap representation instead of the dense amplitudes.
func copyState(be Backend, dst, src *statevec.State) {
	if sh, ok := be.(StateShadow); ok {
		sh.CopyState(dst, src)
		return
	}
	dst.CopyFrom(src)
}

// LeafFunc observes a leaf state of the simulation tree. The state is only
// valid for the duration of the call; be is the worker's backend instance
// (leaves must route observation through it so shadow backends can sample or
// materialize); the RNG stream is the leaf node's own.
type LeafFunc func(st *statevec.State, be Backend, r *rng.RNG)

// SubtreeSpan returns the number of DFS sequence slots occupied by one node
// at the given level together with its whole subtree: 1 + A_{level+1} +
// A_{level+1}*A_{level+2} + ... Node RNG streams are keyed by these
// sequence numbers in every tree engine (the dense executor here and the
// stabilizer tableau tree), so the arithmetic lives in exactly one place —
// desynchronizing it would silently break cross-engine seed equivalence.
func SubtreeSpan(arities []int, level int) uint64 {
	span := uint64(1)
	acc := uint64(1)
	for _, a := range arities[level+1:] {
		acc *= uint64(a)
		span += acc
	}
	return span
}

// DensePeakBytes returns the dense executor's peak amplitude memory for a
// tree run: one state per level plus the working copy, per worker. The
// planner's admission estimates and the executor's reported PeakStateBytes
// both come from here, and the per-state term comes from the allocator's
// own layout constant (statevec.StateBytes), so a job admitted on the
// estimate cannot observe a different number at run time — even across
// amplitude-layout changes.
func DensePeakBytes(workers, levels, numQubits int) int64 {
	return int64(workers) * int64(levels+1) * statevec.StateBytes(numQubits)
}

// treeWorkers returns the worker count a tree run will use for the plan:
// Parallelism clamped to [1, first-level arity].
func (e *Executor) treeWorkers(plan *partition.Plan) int {
	w := e.Parallelism
	if w < 1 {
		w = 1
	}
	if w > plan.Arities[0] {
		w = plan.Arities[0]
	}
	return w
}

// runTree walks the plan's simulation tree depth-first and fills the
// accounting fields of res. Parallelism > 1 distributes first-level subtrees
// across workers; node RNG streams are keyed by deterministic DFS sequence
// numbers, so results are identical to the serial walk.
//
// leafFor is called once per worker, before that worker starts, and must
// return the worker's private leaf observer. Each observer runs on exactly
// one goroutine with no cross-worker synchronization — callers accumulate
// into per-worker shards and merge after runTree returns, instead of the
// previous design's global mutex around every leaf (which serialized the
// sample-and-histogram tail of every subtree).
func (e *Executor) runTree(plan *partition.Plan, res *Result, leafFor func(worker int) LeafFunc) error {
	be := e.Backend
	if be == nil {
		be = PlainBackend{}
	}
	subs := plan.Subcircuits()
	n := plan.Circuit.NumQubits
	levels := plan.Levels()
	rootRNG := rng.New(e.Seed)

	// subtreeNodes is the node count of one subtree hanging off a level-0
	// node — used to pre-assign deterministic DFS sequence numbers to
	// parallel workers.
	subtreeNodes := SubtreeSpan(plan.Arities, 0)

	workers := e.treeWorkers(plan)
	res.PeakStateBytes = DensePeakBytes(workers, levels, n)

	// Ideal-prefix reuse applies only where its correctness argument holds:
	// plain dense kernels (shadow backends keep their own cheap
	// representation; buffering and sharded backends apply gates through
	// other code paths than the snapshots were built with) under a noise
	// model whose firing decisions are state-independent (Pauli-only).
	_, plain := be.(PlainBackend)
	usePrefix := plain && e.Prefix.Matches(plan) && e.Noise.PauliOnly()
	if usePrefix {
		// The shared snapshots are held once, not per worker.
		res.PeakStateBytes += e.Prefix.Bytes()
	}

	type shard struct {
		ops, copies, nodes, prefixHits int64
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		onLeaf := leafFor(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			be := be
			if forker, ok := be.(Forker); ok && workers > 1 {
				// Stateful backends (e.g. fusion) keep per-qubit buffers;
				// give every worker its own instance.
				be = forker.Fork()
			}
			sh := &shards[w]
			levelState := make([]*statevec.State, levels)
			for i := range levelState {
				levelState[i] = statevec.NewZero(n)
			}
			root := statevec.NewZero(n)
			if shadow, ok := be.(StateShadow); ok {
				shadow.BindZero(root)
			}
			// runNode executes one tree node and returns the node's state
			// plus whether it is still on the ideal trajectory. When the
			// parent is ideal and the segment's noise dry-run fires nothing,
			// the node's state is the shared boundary snapshot — no copy, no
			// gate work; the probe RNG (advanced exactly as a no-fire
			// trajectory would) replaces the node stream. Otherwise the node
			// runs normally from the parent state with the untouched stream.
			runNode := func(level int, parent *statevec.State, parentIdeal bool, r *rng.RNG, gates []gate.Gate) (*statevec.State, bool) {
				if usePrefix && parentIdeal {
					probe := *r
					if fired, ok := e.Noise.SegmentFires(gates, &probe); ok && !fired {
						*r = probe
						sh.nodes++
						sh.prefixHits++
						return e.Prefix.states[level], true
					}
				}
				st := levelState[level]
				copyState(be, st, parent)
				sh.copies++
				sh.nodes++
				sh.ops += e.runSegment(st, be, gates, r)
				return st, false
			}
			var walk func(level int, parent *statevec.State, parentIdeal bool, seqBase uint64)
			walk = func(level int, parent *statevec.State, parentIdeal bool, seqBase uint64) {
				arity := plan.Arities[level]
				gates := subs[level].Gates
				// Child i's subtree (including its own node) spans a fixed
				// block of DFS sequence numbers.
				blockLen := SubtreeSpan(plan.Arities, level)
				for child := 0; child < arity; child++ {
					if e.cancelled() {
						return
					}
					seq := seqBase + uint64(child)*blockLen
					r := rootRNG.SplitAt(seq)
					st, ideal := runNode(level, parent, parentIdeal, r, gates)
					if level == levels-1 {
						onLeaf(st, be, r)
					} else {
						walk(level+1, st, ideal, seq+1)
					}
				}
			}
			// Worker w handles level-0 children w, w+workers, ...
			arity0 := plan.Arities[0]
			gates0 := subs[0].Gates
			for child := w; child < arity0; child += workers {
				if e.cancelled() {
					return
				}
				seq := 1 + uint64(child)*subtreeNodes
				r := rootRNG.SplitAt(seq)
				st, ideal := runNode(0, root, true, r, gates0)
				if levels == 1 {
					onLeaf(st, be, r)
				} else {
					walk(1, st, ideal, seq+1)
				}
			}
		}(w)
	}
	wg.Wait()
	if e.cancelled() {
		return e.Context.Err()
	}
	for _, sh := range shards {
		res.GateApplications += sh.ops
		res.StateCopies += sh.copies
		res.Nodes += sh.nodes
		res.PrefixReuseHits += sh.prefixHits
	}
	return nil
}

// Run executes the plan's simulation tree and returns the aggregated
// outcomes and cost accounting. Every leaf samples exactly one outcome
// (Figure 7: the leaf count equals the outcome count).
func (e *Executor) Run(plan *partition.Plan) (*Result, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	be := e.Backend
	if be == nil {
		be = PlainBackend{}
	}
	res := &Result{
		Counts:      make(map[uint64]int),
		Structure:   plan.Structure(),
		BackendName: be.Name(),
	}
	n := plan.Circuit.NumQubits
	start := time.Now()
	// Each worker histograms its own leaves; the maps are merged once after
	// the tree walk instead of locking around every sample. Counts are
	// integers keyed by outcome, so the merged histogram is identical to a
	// serial walk's for the same seed.
	type leafShard struct {
		counts   map[uint64]int
		outcomes int
	}
	shards := make([]leafShard, e.treeWorkers(plan))
	err := e.runTree(plan, res, func(worker int) LeafFunc {
		sh := &shards[worker]
		sh.counts = make(map[uint64]int)
		return func(st *statevec.State, be Backend, r *rng.RNG) {
			var out uint64
			if shadow, ok := be.(StateShadow); ok {
				out = shadow.SampleState(st, r)
			} else {
				out = st.Sample(r)
			}
			out = e.Noise.FlipReadout(out, n, r)
			sh.counts[out]++
			sh.outcomes++
		}
	})
	if err != nil {
		return nil, err
	}
	for i := range shards {
		for k, v := range shards[i].counts {
			res.Counts[k] += v
		}
		res.Outcomes += shards[i].outcomes
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunBaseline is a convenience that executes the (shots,1,...,1) baseline
// plan through the same executor machinery — useful for apples-to-apples
// backend comparisons (Figure 12 uses this on the fusion backend).
func (e *Executor) RunBaseline(c *circuit.Circuit, shots int) (*Result, error) {
	return e.Run(partition.Baseline(c, shots))
}

// Speedup compares a baseline duration to a TQSim duration.
func Speedup(baseline, tqsim time.Duration) float64 {
	if tqsim <= 0 {
		return 0
	}
	return float64(baseline) / float64(tqsim)
}

// NormalizedComputation returns the tree's kernel work relative to the
// baseline's for the same outcome count — Figure 19's y-axis.
func NormalizedComputation(res *Result, baselineOps int64) float64 {
	if baselineOps <= 0 {
		return 0
	}
	return float64(res.GateApplications) / float64(baselineOps)
}

// String summarizes the result for logs.
func (r *Result) String() string {
	return fmt.Sprintf("%s backend=%s outcomes=%d nodes=%d ops=%d copies=%d peakMB=%.1f in %v",
		r.Structure, r.BackendName, r.Outcomes, r.Nodes, r.GateApplications,
		r.StateCopies, float64(r.PeakStateBytes)/(1<<20), r.Elapsed)
}
