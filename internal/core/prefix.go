package core

import (
	"fmt"
	"slices"

	"tqsim/internal/gate"
	"tqsim/internal/partition"
	"tqsim/internal/statevec"
)

// PrefixSnapshots caches the noise-free (ideal) state at every subcircuit
// boundary of a plan. It is the cross-point reuse substrate of the sweep
// engine: under a Pauli-only noise model a trajectory's state is bitwise
// equal to the ideal evolution until the first channel actually fires, so a
// tree node whose parent is still on the ideal trajectory — and whose
// segment draws no firing channel — needs no gate work at all: its state IS
// the cached boundary snapshot. The snapshots depend only on (circuit,
// bounds), so one set serves every noise point, shot count and repeat of a
// sweep whose plans share the subcircuit boundaries, extending the paper's
// intra-tree redundancy elimination across sweep points.
//
// Snapshots are computed once with the plain dense kernels in the same
// per-gate order the executor applies them, so a snapshot is bitwise equal
// to the state a no-fire trajectory would have computed — the property that
// makes reuse histogram-preserving. They are read-only after construction
// and safe to share across worker goroutines and concurrent runs.
type PrefixSnapshots struct {
	n      int
	bounds []int
	// states[L] is the ideal state after subcircuits 0..L (len = levels).
	states []*statevec.State
}

// NewPrefixSnapshots computes the boundary snapshots for a plan. The cost is
// one ideal sweep over the circuit (the same work as a single noise-free
// trajectory). Widths beyond the dense limit error out — callers gate reuse
// to dense plans anyway.
func NewPrefixSnapshots(plan *partition.Plan) (*PrefixSnapshots, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	n := plan.Circuit.NumQubits
	if n > statevec.MaxQubits {
		return nil, fmt.Errorf("core: %d qubits exceeds the %d-qubit dense snapshot limit", n, statevec.MaxQubits)
	}
	ps := &PrefixSnapshots{n: n, bounds: append([]int(nil), plan.Bounds...)}
	st := statevec.NewZero(n)
	for _, sc := range plan.Subcircuits() {
		for _, g := range sc.Gates {
			if g.Kind != gate.KindI {
				st.Apply(g)
			}
		}
		ps.states = append(ps.states, st.Clone())
	}
	return ps, nil
}

// Matches reports whether the snapshots were built for this plan's circuit
// width and subcircuit boundaries — the executor's guard against a stale
// cache entry being applied to a structurally different plan.
func (ps *PrefixSnapshots) Matches(plan *partition.Plan) bool {
	return ps != nil && ps.n == plan.Circuit.NumQubits &&
		len(ps.states) == plan.Levels() && slices.Equal(ps.bounds, plan.Bounds)
}

// SnapshotBytes returns the footprint of a prefix-snapshot set for a tree
// of the given level count and width: one dense state per level. The sweep
// engine's admission estimates and PrefixSnapshots.Bytes both use it, so a
// sweep admitted on the estimate observes the same number at run time.
func SnapshotBytes(levels, numQubits int) int64 {
	return int64(levels) * statevec.StateBytes(numQubits)
}

// Bytes returns the snapshot memory footprint (levels dense states), the
// term the sweep engine adds to its admission estimates when reuse is on.
func (ps *PrefixSnapshots) Bytes() int64 {
	if ps == nil {
		return 0
	}
	return SnapshotBytes(len(ps.states), ps.n)
}

// PrefixKey is the cache identity of a plan's snapshots: two plans over the
// same circuit share snapshots exactly when their boundary lists are equal.
// The sweep engine keys its snapshot cache by (circuit, PrefixKey).
func PrefixKey(plan *partition.Plan) string {
	return fmt.Sprint(plan.Circuit.NumQubits, plan.Bounds)
}
