package tqsim_test

// Seed-determinism regression tests: histograms must be a pure function of
// (circuit, noise, shots, seed, backend) — independent of Parallelism and
// identical across repeated runs. This guards the worker-pool and
// lock-free-leaf machinery of PR 1 and the hybrid dispatcher and backend
// registry of PR 2: any scheduling-dependent RNG consumption or unsynced
// accumulation shows up here as a histogram diff.

import (
	"testing"

	"tqsim"
)

func assertCountsEqual(t *testing.T, ctx string, want, got map[uint64]int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: histogram support %d vs %d", ctx, len(want), len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: outcome %d: %d vs %d", ctx, k, v, got[k])
		}
	}
}

func TestRunBaselineDeterministicAcrossParallelism(t *testing.T) {
	c := tqsim.QSCCircuit(6, 5, 11)
	m := tqsim.SycamoreNoise()
	ref := tqsim.RunBaseline(c, m, 300, tqsim.Options{Seed: 5})
	for _, par := range []int{1, 8} {
		res := tqsim.RunBaseline(c, m, 300, tqsim.Options{Seed: 5, Parallelism: par})
		assertCountsEqual(t, "baseline-par", ref.Counts, res.Counts)
	}
	again := tqsim.RunBaseline(c, m, 300, tqsim.Options{Seed: 5})
	assertCountsEqual(t, "baseline-repeat", ref.Counts, again.Counts)
}

func TestRunTQSimDeterministicAcrossParallelism(t *testing.T) {
	c := tqsim.QFTCircuit(6)
	m := tqsim.SycamoreNoise()
	opt := tqsim.Options{Seed: 9, CopyCost: 20}
	ref, err := tqsim.RunTQSim(c, m, 400, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 8} {
		o := opt
		o.Parallelism = par
		res, err := tqsim.RunTQSim(c, m, 400, o)
		if err != nil {
			t.Fatal(err)
		}
		assertCountsEqual(t, "tqsim-par", ref.Counts, res.Counts)
	}
	again, err := tqsim.RunTQSim(c, m, 400, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertCountsEqual(t, "tqsim-repeat", ref.Counts, again.Counts)
}

// TestRunTQSimDeterministicPerBackend extends the parallelism guarantee to
// every registered engine through the public API.
func TestRunTQSimDeterministicPerBackend(t *testing.T) {
	c := tqsim.CliffordPrefixCircuit(6, 3, 5)
	m := tqsim.SycamoreNoise()
	for _, name := range tqsim.Backends() {
		opt := tqsim.Options{Seed: 21, CopyCost: 20, Backend: name}
		ref, err := tqsim.RunTQSim(c, m, 256, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		o := opt
		o.Parallelism = 8
		res, err := tqsim.RunTQSim(c, m, 256, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertCountsEqual(t, name+"-par", ref.Counts, res.Counts)
	}
}

// TestWideCliffordHybridDispatch is the acceptance workload: a >=30-qubit
// Clifford circuit, infeasible on any dense engine (a 32-qubit state is
// 64 GiB), runs through the hybrid dispatch path with seed-deterministic
// counts that recover the noiseless answer on most shots.
func TestWideCliffordHybridDispatch(t *testing.T) {
	const width = 32
	secret := uint64(0xB6D1A5E7) & ((1 << (width - 1)) - 1)
	c := tqsim.BVCircuit(width, secret)
	m := tqsim.DepolarizingNoise(0.0005, 0.005)
	opt := tqsim.Options{Seed: 4, Backend: "stabilizer", Parallelism: 8}
	res, err := tqsim.RunBackend(c, m, 512, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes != 512 {
		t.Fatalf("outcomes %d", res.Outcomes)
	}
	// BV measures the secret on the data qubits; the ancilla (top qubit)
	// may read 0 or 1. Most shots must land on the secret.
	mask := (uint64(1) << (width - 1)) - 1
	hits := 0
	for out, n := range res.Counts {
		if out&mask == secret {
			hits += n
		}
	}
	if hits < 400 {
		t.Fatalf("secret recovered on %d/512 shots", hits)
	}
	o := opt
	o.Parallelism = 1
	again, err := tqsim.RunBackend(c, m, 512, o)
	if err != nil {
		t.Fatal(err)
	}
	assertCountsEqual(t, "wide-clifford", res.Counts, again.Counts)
}

// TestWideCircuitErrorsInsteadOfPanicking: when the stabilizer fast path
// does not apply (non-Pauli noise here), a wide circuit must surface a
// diagnostic error instead of reaching the dense executor's allocation
// panic.
func TestWideCircuitErrorsInsteadOfPanicking(t *testing.T) {
	c := tqsim.GHZCircuit(48)
	m := tqsim.NoiseByName("TRR") // thermal relaxation: not Pauli-only
	_, err := tqsim.RunBackend(c, m, 16, tqsim.Options{Backend: "stabilizer"})
	if err == nil {
		t.Fatal("expected a width error for non-Pauli noise at 48 qubits")
	}
	_, err = tqsim.RunBackend(c, nil, 16, tqsim.Options{Backend: "fusion"})
	if err == nil {
		t.Fatal("expected a width error for a dense backend at 48 qubits")
	}
}

// TestSubsampleCountsReturnsCopy is the regression test for the aliasing
// bug: at or below the target the function used to return the caller's
// map, so downstream mutation corrupted the original histogram.
func TestSubsampleCountsReturnsCopy(t *testing.T) {
	orig := map[uint64]int{1: 5, 2: 7}
	out := tqsim.SubsampleCounts(orig, 100, 3) // total 12 <= target 100
	if len(out) != 2 || out[1] != 5 || out[2] != 7 {
		t.Fatalf("subsample changed values: %v", out)
	}
	out[1] = 999
	out[3] = 1
	if orig[1] != 5 || orig[3] != 0 {
		t.Fatalf("mutating the result corrupted the input: %v", orig)
	}
	// Above-target path was already a fresh map; pin that too.
	big := map[uint64]int{0: 50, 1: 50}
	thin := tqsim.SubsampleCounts(big, 10, 3)
	total := 0
	for _, v := range thin {
		total += v
	}
	if total != 10 {
		t.Fatalf("thinned to %d outcomes, want 10", total)
	}
	thin[0] = 999
	if big[0] != 50 {
		t.Fatalf("mutating the thinned result corrupted the input: %v", big)
	}
}
