package main

import (
	"fmt"
	"sort"
	"strings"

	"tqsim"
	"tqsim/internal/core"
	"tqsim/internal/metrics"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
	"tqsim/internal/redunelim"
	"tqsim/internal/workloads"
)

// profileSweep wraps the host copy-cost profiler.
func profileSweep(lo, hi, reps int) (float64, []core.CopyCostProfile) {
	return core.ProfileCopyCostSweep(lo, hi, reps)
}

// copyCostFor returns the state-copy cost DCP should plan with. The host's
// measured ratio is honest but below 1 (pure-Go gate kernels are slower
// than memcpy), which would let DCP cut single-gate subcircuits and erase
// the per-class structure diversity the paper reports. Clamp to the lowest
// published Figure 10 value (Tesla V100: 5 gate-equivalents) so plans stay
// representative of optimized backends.
func copyCostFor() float64 {
	measured := tqsim.ProfileCopyCost(10, 100)
	if measured < 5 {
		return 5
	}
	return measured
}

// suiteConfig returns the width cap and shot budget for suite-wide
// experiments. Quick mode mirrors the artifact's <= 13-qubit default but
// trims to 10 to keep 'all' snappy.
func suiteConfig(cfg config) (maxQubits, shots int) {
	if cfg.full {
		return 13, 3200
	}
	return 10, 1500
}

// expOptions bundles the simulation options every suite experiment shares.
// Equation 5's margin of error is relaxed at scaled-down shot budgets: the
// paper's effective eps (~0.02) sizes A0 for 32,000-shot populations, and
// holding it fixed at a few thousand shots makes the first level swallow
// the budget and erases the tree. eps = 0.05 (quick) / 0.03 (full) keeps
// A0's *fraction* of the population in the paper's regime.
func expOptions(cfg config) tqsim.Options {
	eps := 0.05
	if cfg.full {
		eps = 0.03
	}
	return tqsim.Options{
		Seed:     cfg.seed,
		CopyCost: copyCostFor(),
		Epsilon:  eps,
		Backend:  cfg.backend,
	}
}

// runSuiteComparison executes baseline-vs-TQSim over the (filtered) suite
// and invokes row for each result.
func runSuiteComparison(cfg config, backend bool, row func(class string, cmp *tqsim.Comparison)) {
	maxQ, shots := suiteConfig(cfg)
	opt := expOptions(cfg)
	if backend {
		// fig12 studies the fusion engine specifically; it overrides any
		// -backend selection (Options.Backend wins over UseFusionBackend).
		opt.Backend = "fusion"
	}
	for _, b := range tqsim.BenchmarkSuite(maxQ) {
		cmp, err := tqsim.Compare(b.Circuit, tqsim.SycamoreNoise(), shots, opt)
		if err != nil {
			fmt.Printf("  %-14s error: %v\n", b.Circuit.Name, err)
			continue
		}
		row(b.Class, cmp)
	}
}

// runFig11 reports per-circuit and per-class TQSim speedups.
func runFig11(cfg config) {
	fmt.Printf("%-14s %6s %6s %-14s %8s %9s\n",
		"Circuit", "Width", "Gates", "Structure", "Speedup", "WorkRatio")
	byClass := map[string][]float64{}
	var all []float64
	runSuiteComparison(cfg, false, func(class string, cmp *tqsim.Comparison) {
		fmt.Printf("%-14s %6d %6d %-14s %7.2fx %9.3f\n",
			cmp.CircuitName, cmp.Width, cmp.Gates, cmp.Structure,
			cmp.Speedup, cmp.WorkRatio)
		byClass[class] = append(byClass[class], cmp.Speedup)
		all = append(all, cmp.Speedup)
	})
	fmt.Println("class means:")
	for _, class := range workloads.Classes {
		if xs := byClass[class]; len(xs) > 0 {
			fmt.Printf("  %-8s %5.2fx\n", strings.ToUpper(class), metrics.Mean(xs))
		}
	}
	fmt.Printf("overall mean speedup: %.2fx (paper: 1.59-3.89x per circuit, 2.51x mean;\n", metrics.Mean(all))
	fmt.Println("absolute values shift with host copy cost and shot budget, the band holds)")
}

// runFig12 repeats the speedup study on the fusion ("GPU-like") backend.
func runFig12(cfg config) {
	byClass := map[string][]float64{}
	runSuiteComparison(cfg, true, func(class string, cmp *tqsim.Comparison) {
		byClass[class] = append(byClass[class], cmp.Speedup)
	})
	fmt.Printf("%-8s %8s\n", "Class", "Speedup")
	var all []float64
	for _, class := range workloads.Classes {
		xs := byClass[class]
		if len(xs) == 0 {
			continue
		}
		fmt.Printf("%-8s %7.2fx\n", strings.ToUpper(class), metrics.Mean(xs))
		all = append(all, xs...)
	}
	fmt.Printf("mean %.2fx — consistent with the plain backend (Figure 11), showing the\n", metrics.Mean(all))
	fmt.Println("gains come from computation reduction, not backend specifics")
}

// runFig14 reports the baseline-vs-TQSim normalized fidelity difference,
// averaging several repetitions per circuit as the paper does (§5.5: "each
// experiment is conducted 10 times, with the average normalized fidelity
// reported").
func runFig14(cfg config) {
	maxQ, shots := suiteConfig(cfg)
	reps := 4
	if cfg.full {
		reps = 10
	}
	opt := expOptions(cfg)
	fmt.Printf("%-14s %10s %10s %9s\n", "Circuit", "BaseFid", "TQSimFid", "Diff")
	var all []float64
	for _, b := range tqsim.BenchmarkSuite(maxQ) {
		var baseFs, tqFs []float64
		for rep := 0; rep < reps; rep++ {
			o := opt
			o.Seed = tqsim.SweepSeed(cfg.seed, 7919+rep)
			cmp, err := tqsim.Compare(b.Circuit, tqsim.SycamoreNoise(), shots, o)
			if err != nil {
				fmt.Printf("%-14s error: %v\n", b.Circuit.Name, err)
				break
			}
			baseFs = append(baseFs, cmp.BaselineFidelity)
			tqFs = append(tqFs, cmp.TQSimFidelity)
		}
		if len(baseFs) == 0 {
			continue
		}
		bf, qf := metrics.Mean(baseFs), metrics.Mean(tqFs)
		d := bf - qf
		if d < 0 {
			d = -d
		}
		all = append(all, d)
		fmt.Printf("%-14s %10.4f %10.4f %9.4f\n", b.Circuit.Name, bf, qf, d)
	}
	fmt.Printf("mean diff %.4f, max diff %.4f (paper: mean 0.006, max 0.016 at 32k shots\n",
		metrics.Mean(all), metrics.Max(all))
	fmt.Println("and 10 repetitions; residual gap is shot-sampling variance)")
}

// runFig15 compares TQSim against the exact density-matrix reference on
// density-matrix-feasible circuits.
func runFig15(cfg config) {
	names := []string{"adder_n4_0", "adder_n4_1", "bv_n6", "bv_n8", "qpe_n4", "qaoa_n6", "qsc_n8"}
	if cfg.full {
		names = append(names, "qpe_n6", "qaoa_n8", "qsc_n9", "qft_n8", "qsc_n10", "bv_n10", "qaoa_n9")
	}
	shots := 8000
	reps := 3
	if cfg.full {
		shots, reps = 32000, 5
	}
	opt := expOptions(cfg)
	m := tqsim.SycamoreNoise()
	fmt.Printf("%-12s %10s %10s %10s %9s\n",
		"Circuit", "ExactFid", "BaseFid", "TQSimFid", "Diff")
	var diffs []float64
	for _, name := range names {
		c := tqsim.BenchmarkByName(name)
		if c == nil || c.NumQubits > 10 {
			continue
		}
		ideal := tqsim.IdealDistribution(c)
		exact := tqsim.ExactNoisyDistribution(c, m)
		exactF := tqsim.NormalizedFidelity(ideal, exact)
		var baseFs, tqFs []float64
		for rep := 0; rep < reps; rep++ {
			o := opt
			o.Seed = tqsim.SweepSeed(cfg.seed, 5701+rep)
			base, err := tqsim.RunBaselineBackend(c, m, shots, o)
			if err != nil {
				fmt.Printf("%-12s error: %v\n", name, err)
				continue
			}
			baseFs = append(baseFs, tqsim.NormalizedFidelity(ideal,
				tqsim.CountsDist(base.Counts, c.NumQubits)))
			res, err := tqsim.RunTQSim(c, m, shots, o)
			if err != nil {
				fmt.Printf("%-12s error: %v\n", name, err)
				break
			}
			thinned := tqsim.SubsampleCounts(res.Counts, shots, tqsim.SweepSeed(o.Seed, 0xf16))
			tqFs = append(tqFs, tqsim.NormalizedFidelity(ideal,
				tqsim.CountsDist(thinned, c.NumQubits)))
		}
		if len(tqFs) == 0 {
			continue
		}
		tqF := metrics.Mean(tqFs)
		d := exactF - tqF
		if d < 0 {
			d = -d
		}
		diffs = append(diffs, d)
		fmt.Printf("%-12s %10.4f %10.4f %10.4f %9.4f\n",
			name, exactF, metrics.Mean(baseFs), tqF, d)
	}
	fmt.Printf("mean diff %.4f, max %.4f (paper: 0.007 mean, 0.015 max). BaseFid shows\n",
		metrics.Mean(diffs), metrics.Max(diffs))
	fmt.Println("the finite-shot sampling bias every trajectory simulator shares against the")
	fmt.Println("exact reference; TQSim sits on the baseline, not below it")
}

// runFig16 sweeps the nine noise-model variants on a QPE circuit.
func runFig16(cfg config) {
	counting := 6
	shots := 1000
	reps := 6
	if cfg.full {
		counting, shots, reps = 8, 3200, 10
	}
	c := workloads.QPE(counting, workloads.QPEPhase, true, -1)
	ideal := tqsim.IdealDistribution(c)
	// The paper generates the TQSim structure from the depolarizing
	// parameters and reuses it for every model (Section 5.5).
	dcPlan := tqsim.PlanDCP(c, tqsim.SycamoreNoise(), shots, expOptions(cfg))
	fmt.Printf("QPE with %d counting qubits, %d gates, structure %s, %d shots x %d reps\n",
		counting, c.Len(), dcPlan.Structure(), shots, reps)
	fmt.Printf("%-6s %10s %10s %9s\n", "Model", "BaseFid", "TQSimFid", "Diff")
	for _, name := range []string{"DC", "DCR", "TR", "TRR", "AD", "ADR", "PD", "PDR", "ALL"} {
		m := tqsim.NoiseByName(name)
		var baseFs, tqFs []float64
		for rep := 0; rep < reps; rep++ {
			seed := tqsim.SweepSeed(cfg.seed, 977+2*rep)
			base := tqsim.RunBaseline(c, m, shots, tqsim.Options{Seed: seed})
			baseFs = append(baseFs, tqsim.NormalizedFidelity(ideal,
				tqsim.CountsDist(base.Counts, c.NumQubits)))
			res, err := tqsim.RunPlan(dcPlan, m, tqsim.Options{Seed: tqsim.SweepSeed(cfg.seed, 977+2*rep+1)})
			if err != nil {
				fmt.Printf("%-6s error: %v\n", name, err)
				continue
			}
			thinned := tqsim.SubsampleCounts(res.Counts, shots, tqsim.SweepSeed(seed, 0xf16))
			tqFs = append(tqFs, tqsim.NormalizedFidelity(ideal,
				tqsim.CountsDist(thinned, c.NumQubits)))
		}
		b, q := metrics.Mean(baseFs), metrics.Mean(tqFs)
		d := b - q
		if d < 0 {
			d = -d
		}
		fmt.Printf("%-6s %10.4f %10.4f %9.4f\n", name, b, q, d)
	}
	fmt.Println("shape check: TQSim tracks the baseline across every model; DC/TR/AD bite hardest")
}

// runFig17 evaluates the six tree structures of the trade-off study.
func runFig17(cfg config) {
	counting := 6
	shots := 1000
	if cfg.full {
		counting = 8
	}
	c := workloads.QPE(counting, workloads.QPEPhase, true, -1)
	m := tqsim.SycamoreNoise()
	ideal := tqsim.IdealDistribution(c)
	base := tqsim.RunBaseline(c, m, shots, tqsim.Options{Seed: cfg.seed})
	baseF := tqsim.NormalizedFidelity(ideal, tqsim.CountsDist(base.Counts, c.NumQubits))
	basePerShot := float64(base.GateApplications) / float64(base.Shots)

	structures := []struct {
		label   string
		arities []int
	}{
		{"DCP (250,2,2)", []int{250, 2, 2}},
		{"XCP (20,10,5)", []int{20, 10, 5}},
		{"UCP (10,10,10)", []int{10, 10, 10}},
		{"(5,10,20)", []int{5, 10, 20}},
		{"(2,2,250)", []int{2, 2, 250}},
		{"(250,1,1)", []int{250, 1, 1}},
	}
	fmt.Printf("baseline fidelity %.4f; %d gates, %d shots\n", baseF, c.Len(), shots)
	fmt.Printf("%-16s %9s %9s %10s\n", "Structure", "WorkSpd", "Outcomes", "FidDiff")
	for _, s := range structures {
		plan := tqsim.PlanStructure(c, s.arities)
		res, err := tqsim.RunPlan(plan, m, tqsim.Options{Seed: tqsim.SweepSeed(cfg.seed, 7)})
		if err != nil {
			fmt.Printf("%-16s error: %v\n", s.label, err)
			continue
		}
		f := tqsim.NormalizedFidelity(ideal, tqsim.CountsDist(res.Counts, c.NumQubits))
		d := baseF - f
		if d < 0 {
			d = -d
		}
		workSpeedup := basePerShot / (float64(res.GateApplications) / float64(res.Outcomes))
		fmt.Printf("%-16s %8.2fx %9d %10.4f\n", s.label, workSpeedup, res.Outcomes, d)
	}
	fmt.Println("shape check: (250,1,1) collapses to 250 outcomes and its fidelity deviates")
	fmt.Println("sharply; DCP keeps the diff small at a solid speedup (Figure 17)")
}

// runFig19 compares redundancy elimination with TQSim per circuit.
func runFig19(cfg config) {
	maxQ, shots := suiteConfig(cfg)
	m := noise.NewSycamore()
	opt := expOptions(cfg)
	copyCost := opt.CopyCost
	type row struct {
		name   string
		gates  int
		redun  float64
		tqsimN float64
	}
	var rows []row
	for _, b := range tqsim.BenchmarkSuite(maxQ) {
		c := b.Circuit
		re := redunelim.Analyze(c, m, shots, cfg.seed)
		plan := partition.Dynamic(c, m, shots, partition.DCPOptions{
			CopyCost: copyCost, Epsilon: opt.Epsilon,
		})
		// TQSim normalized computation from the plan's exact work
		// accounting (gate work plus copy overhead in gate-equivalents).
		tree := float64(plan.GateWork()) + copyCost*float64(plan.CopyWork())
		baseOps := float64(plan.TotalOutcomes()) * float64(c.Len())
		rows = append(rows, row{c.Name, c.Len(), re.NormalizedComputation, tree / baseOps})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].gates < rows[j].gates })
	fmt.Printf("%-14s %6s %12s %12s %s\n", "Circuit", "Gates", "Redun-Elim", "TQSim", "Winner")
	crossed := false
	for _, r := range rows {
		winner := "redun-elim"
		if r.tqsimN < r.redun {
			winner = "tqsim"
			crossed = true
		}
		fmt.Printf("%-14s %6d %12.3f %12.3f %s\n", r.name, r.gates, r.redun, r.tqsimN, winner)
	}
	if crossed {
		fmt.Println("shape check: redundancy elimination wins on short circuits, TQSim past the")
		fmt.Println("crossover (paper: ~150 gates at Sycamore rates)")
	}
}
