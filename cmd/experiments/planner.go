package main

import (
	"fmt"

	"tqsim"
)

// runPlanner prints the auto-dispatch decision table: for each (circuit,
// noise) cell of a workload grid spanning the Clifford/non-Clifford and
// narrow/wide axes, the engine the planner picks and its one-line reason.
// The grid mirrors internal/planner's decision-table test, so the printed
// table and the pinned expectations cannot drift apart silently.
func runPlanner(cfg config) {
	shots := 2000
	if cfg.full {
		shots = 16000
	}
	type cell struct {
		circuit *tqsim.Circuit
		noise   string
	}
	cells := []cell{
		{tqsim.GHZCircuit(8), "DC"},
		{tqsim.GHZCircuit(40), "DC"},
		{tqsim.BVCircuit(32, 0xABCDE), "DC"},
		{tqsim.CliffordCircuit(56, 6, cfg.seed), "ideal"},
		{tqsim.QFTCircuit(10), "DC"},
		{tqsim.QSCCircuit(8, 6, cfg.seed), "DC"},
		{tqsim.CliffordPrefixCircuit(12, 24, cfg.seed), "DC"},
		{tqsim.GHZCircuit(10), "TRR"},
		{tqsim.GHZCircuit(48), "TRR"}, // no viable engine: error row
		{tqsim.QSCCircuit(8, 6, cfg.seed), "ideal"},
	}
	fmt.Printf("%-18s %2s %-6s %-10s %-24s %s\n",
		"circuit", "n", "noise", "clifford", "decision", "why")
	for _, c := range cells {
		m := tqsim.NoiseByName(c.noise)
		opt := tqsim.Options{Seed: cfg.seed, CopyCost: 20}
		d, err := tqsim.Explain(c.circuit, m, shots, opt)
		cliff := "—"
		if d != nil {
			cliff = fmt.Sprintf("%d/%d", d.CliffordPrefix, d.TotalGates)
		}
		if err != nil {
			fmt.Printf("%-18s %2d %-6s %-10s %-24s %v\n",
				c.circuit.Name, c.circuit.NumQubits, c.noise, cliff, "(none)", err)
			continue
		}
		choice := d.Backend
		if d.Mode != "" {
			choice += "/" + d.Mode
		}
		fmt.Printf("%-18s %2d %-6s %-10s %-24s %s\n",
			c.circuit.Name, c.circuit.NumQubits, c.noise, cliff, choice, d.Why)
	}
}
