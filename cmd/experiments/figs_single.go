package main

import (
	"fmt"

	"tqsim"
	"tqsim/internal/hpcmodel"
	"tqsim/internal/workloads"
)

// runTable2 prints the benchmark characteristics table.
func runTable2(cfg config) {
	rows := workloads.Characteristics(workloads.Suite(0))
	fmt.Print(workloads.FormatCharacteristics(rows))
}

// runTable3 measures baseline vs TQSim wall time on the largest circuits
// that fit the mode's budget (the paper uses QV_18, QV_20, QFT_20).
func runTable3(cfg config) {
	names := []string{"qv_n10", "qv_n12", "qft_n12"}
	shots := 400
	if cfg.full {
		names = []string{"qv_n18", "qv_n20", "qft_n18"}
		shots = 4000
	}
	opt := expOptions(cfg)
	fmt.Printf("%-10s %12s %12s %8s\n", "Benchmark", "Baseline(s)", "TQSim(s)", "Speedup")
	for _, name := range names {
		c := tqsim.BenchmarkByName(name)
		cmp, err := tqsim.Compare(c, tqsim.SycamoreNoise(), shots, opt)
		if err != nil {
			fmt.Printf("%-10s error: %v\n", name, err)
			continue
		}
		fmt.Printf("%-10s %12.2f %12.2f %7.2fx\n",
			name, cmp.BaselineTime.Seconds(), cmp.TQSimTime.Seconds(), cmp.Speedup)
	}
}

// runFig1 contrasts ideal with noisy simulation time for a QFT circuit.
func runFig1(cfg config) {
	width, shots := 10, 400
	if cfg.full {
		width, shots = 15, 3200
	}
	c := workloads.QFT(width, true)
	ideal := tqsim.RunIdeal(c, shots, cfg.seed)
	noisy := tqsim.RunBaseline(c, tqsim.SycamoreNoise(), shots, tqsim.Options{Seed: cfg.seed})
	ratio := float64(noisy.Elapsed) / float64(ideal.Elapsed)
	fmt.Printf("QFT_%d, %d shots\n", width, shots)
	fmt.Printf("  ideal  %12v   (1 state-vector pass + sampling)\n", ideal.Elapsed)
	fmt.Printf("  noisy  %12v   (%d trajectories)\n", noisy.Elapsed, shots)
	fmt.Printf("  noisy/ideal ratio: %.0fx  (paper: 170-335x at 32k shots)\n", ratio)
}

// runFig4 prints the analytic memory curves and machine lines.
func runFig4(cfg config) {
	fmt.Printf("%-7s %16s %16s\n", "Qubits", "Statevector", "DensityMatrix")
	for n := 10; n <= 40; n += 5 {
		fmt.Printf("%-7d %16s %16s\n", n,
			fmtBytes(hpcmodel.StatevectorBytes(n)),
			fmtBytes(hpcmodel.DensityMatrixBytes(n)))
	}
	fmt.Printf("laptop (16 GB):       statevector up to %d qubits, density matrix up to %d\n",
		hpcmodel.MaxQubitsStatevector(hpcmodel.LaptopMemoryBytes),
		hpcmodel.MaxQubitsDensityMatrix(hpcmodel.LaptopMemoryBytes))
	fmt.Printf("El Capitan (~5.4 PB): statevector up to %d qubits, density matrix up to %d (paper: <25)\n",
		hpcmodel.MaxQubitsStatevector(hpcmodel.ElCapitanMemoryBytes),
		hpcmodel.MaxQubitsDensityMatrix(hpcmodel.ElCapitanMemoryBytes))
}

// runFig5 measures noisy BV scaling on-host and extrapolates with the
// documented model.
func runFig5(cfg config) {
	shots := 256
	widths := []int{10, 11, 12, 13, 14}
	if cfg.full {
		shots = 2048
		widths = []int{10, 12, 14, 16, 18}
	}
	fmt.Printf("%-7s %12s %14s %10s\n", "Qubits", "Time", "Time/shot", "Memory")
	var lastW int
	var lastSec float64
	for _, w := range widths {
		c := workloads.BV(w, workloads.BVSecret(w))
		res := tqsim.RunBaseline(c, tqsim.SycamoreNoise(), shots, tqsim.Options{Seed: cfg.seed})
		sec := res.Elapsed.Seconds()
		fmt.Printf("%-7d %12.3fs %13.3fms %10s\n",
			w, sec, 1000*sec/float64(shots), fmtBytes(float64(res.PeakStateBytes)))
		lastW, lastSec = w, sec
	}
	model := hpcmodel.NoisyScalingModel{AnchorQubits: lastW, AnchorSeconds: lastSec, GateGrowth: 1.04}
	fmt.Println("model extrapolation (2x/qubit compute, linear gate growth):")
	for _, w := range []int{20, 24, 28} {
		fmt.Printf("%-7d %12.0fs  %10s   [modeled]\n",
			w, model.SecondsAt(w), fmtBytes(hpcmodel.StatevectorBytes(w)))
	}
	fmt.Println("shape check: time grows exponentially while memory stays far below system capacity")
}

// runFig8 prints the GPU parallel-shot model.
func runFig8(cfg config) {
	m := hpcmodel.DefaultA100()
	fmt.Printf("%-7s", "Qubits")
	ps := []int{1, 2, 4, 8, 16}
	for _, p := range ps {
		fmt.Printf(" %8s", fmt.Sprintf("p=%d", p))
	}
	fmt.Printf(" %12s\n", "Mem@p=16")
	for n := 20; n <= 25; n++ {
		fmt.Printf("%-7d", n)
		for _, p := range ps {
			fmt.Printf(" %8.2f", m.Speedup(p, n))
		}
		fmt.Printf(" %12s\n", fmtBytes(m.MemoryUsage(16, n)))
	}
	fmt.Println("shape check: 20-21 qubits gain up to ~3x; beyond 24 qubits parallel shots gain nothing")
}

// runFig9 measures BV baseline/TQSim memory and speedup across widths.
func runFig9(cfg config) {
	widths := []int{12, 14, 16}
	shots := 600
	if cfg.full {
		widths = []int{16, 18, 20, 22}
		shots = 4000
	}
	opt := expOptions(cfg)
	fmt.Printf("%-7s %14s %14s %9s %9s\n", "Qubits", "BaseMem", "TQSimMem", "Speedup", "WorkRatio")
	for _, w := range widths {
		c := workloads.BV(w, workloads.BVSecret(w))
		cmp, err := tqsim.Compare(c, tqsim.SycamoreNoise(), shots, opt)
		if err != nil {
			fmt.Printf("%-7d error: %v\n", w, err)
			continue
		}
		baseMem := hpcmodel.StatevectorBytes(w)
		fmt.Printf("%-7d %14s %14s %8.2fx %9.3f\n", w,
			fmtBytes(baseMem), fmtBytes(float64(cmp.TQSimPeakBytes)),
			cmp.Speedup, cmp.WorkRatio)
	}
	fmt.Println("shape check: TQSim stores one extra state per tree level, well below system memory")
}

// runFig10 profiles the host and prints the published machine table.
func runFig10(cfg config) {
	reps := 100
	lo, hi := 8, 14
	if cfg.full {
		reps, hi = 400, 20
	}
	avg, profiles := profileSweep(lo, hi, reps)
	fmt.Printf("%-34s %-14s %8s\n", "System", "Memory", "CopyCost")
	for _, e := range hpcmodel.Figure10Table() {
		fmt.Printf("%-34s %-14s %8.0f\n", e.Machine, e.Memory, e.Cost)
	}
	fmt.Printf("%-34s %-14s %8.1f   [measured]\n", "this host", "(profiled)", avg)
	fmt.Printf("per-width host ratios:")
	for _, p := range profiles {
		fmt.Printf(" %d:%.1f", p.Qubits, p.Ratio)
	}
	fmt.Println()
	fmt.Println("shape check: the ratio is width-stable, so DCP uses the average (Section 3.6)")
}

func fmtBytes(b float64) string {
	const unit = 1024.0
	suffixes := []string{"B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB", "ZiB"}
	i := 0
	for b >= unit && i < len(suffixes)-1 {
		b /= unit
		i++
	}
	return fmt.Sprintf("%.1f %s", b, suffixes[i])
}
