// Command experiments regenerates every table and figure of the paper's
// evaluation. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records how the measured shapes compare to the
// published ones.
//
// Usage:
//
//	experiments [flags] <experiment>...
//	experiments all            # everything, quick configuration
//	experiments -full fig11    # paper-scale widths/shots (slow)
//
// Experiments: table2 table3 fig1 fig4 fig5 fig8 fig9 fig10 fig11 fig12
// fig13 fig14 fig15 fig16 fig17 fig18 fig19
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"tqsim"
)

// config carries the global experiment knobs. Quick mode (the default, like
// the artifact's) caps widths/shots so the whole suite finishes in minutes;
// -full runs paper-scale parameters.
type config struct {
	full bool
	seed uint64
	// backend overrides the engine for the suite experiments (empty =
	// statevec); see the "backends" experiment for a side-by-side of all
	// registered engines.
	backend string
}

type experiment struct {
	name string
	desc string
	run  func(cfg config)
}

var experiments = []experiment{
	{"table2", "benchmark characteristics", runTable2},
	{"table3", "simulation time, medium-scale circuits", runTable3},
	{"fig1", "ideal vs noisy QFT simulation time", runFig1},
	{"fig4", "memory: statevector vs density matrix", runFig4},
	{"fig5", "noisy BV time and memory growth", runFig5},
	{"fig8", "GPU parallel-shot saturation", runFig8},
	{"fig9", "BV memory overhead and TQSim speedup", runFig9},
	{"fig10", "state copy cost across systems", runFig10},
	{"fig11", "TQSim speedup across the suite", runFig11},
	{"fig12", "speedup on the fusion (GPU-like) backend", runFig12},
	{"fig13", "multi-node strong and weak scaling", runFig13},
	{"fig14", "normalized fidelity difference across the suite", runFig14},
	{"fig15", "TQSim vs density-matrix fidelity", runFig15},
	{"fig16", "nine noise models on QPE", runFig16},
	{"fig17", "tree-structure accuracy/speedup trade-off", runFig17},
	{"fig18", "QAOA max-cut cost landscapes", runFig18},
	{"fig19", "redundancy elimination vs TQSim", runFig19},
	{"ablation", "DCP vs UCP vs XCP partitioners (DESIGN.md §5)", runAblation},
	{"sensitivity", "shot-count sensitivity (paper §4.3)", runSensitivity},
	{"oracle", "stabilizer-oracle cross-check on Clifford circuits", runOracle},
	{"backends", "registry side-by-side: every engine on shared workloads", runBackends},
	{"planner", "auto-dispatch decision table across the workload/noise/width grid", runPlanner},
}

func main() {
	var cfg config
	flag.BoolVar(&cfg.full, "full", false, "run paper-scale parameters (slow)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "experiment seed")
	flag.StringVar(&cfg.backend, "backend", "",
		"execution engine for suite experiments: auto, "+strings.Join(tqsim.Backends(), ", "))
	flag.Parse()
	if cfg.backend != "" && cfg.backend != tqsim.AutoBackend &&
		!slices.Contains(tqsim.Backends(), cfg.backend) {
		fmt.Fprintf(os.Stderr, "experiments: unknown backend %q (have auto, %s)\n",
			cfg.backend, strings.Join(tqsim.Backends(), ", "))
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, e := range experiments {
				want[e.name] = true
			}
			continue
		}
		want[strings.ToLower(a)] = true
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.name] = true
	}
	unknown := make([]string, 0)
	for name := range want {
		if !known[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		slices.Sort(unknown) // deterministic pick regardless of map order
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n\n", unknown[0])
		usage()
		os.Exit(2)
	}
	for _, e := range experiments {
		if !want[e.name] {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
		e.run(cfg)
		fmt.Println()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [-full] [-seed N] <experiment>...")
	fmt.Fprintln(os.Stderr, "experiments:")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.name, e.desc)
	}
	fmt.Fprintln(os.Stderr, "  all      every experiment")
}
