package main

import (
	"fmt"
	"time"

	"tqsim"
	"tqsim/internal/metrics"
)

// runBackends exercises the backend registry: every registered engine runs
// the same seeded workloads and the table reports time, histogram support,
// and the total-variation distance to the statevec reference — a quick
// visual conformance check (the rigorous one is internal/core's
// conformance suite). The last block runs a wide Clifford workload only
// the stabilizer engine can touch.
func runBackends(cfg config) {
	shots := 2000
	if cfg.full {
		shots = 8000
	}
	workloads := []*tqsim.Circuit{
		tqsim.BVCircuit(10, 0b1011011011),
		tqsim.CliffordCircuit(10, 8, cfg.seed),
		tqsim.QFTCircuit(8),
	}
	m := tqsim.SycamoreNoise()
	fmt.Printf("%-16s %-11s %10s %8s %8s\n", "Circuit", "Backend", "Time", "Support", "TVvsSV")
	for _, c := range workloads {
		// The statevec reference runs first; every other engine reports its
		// total-variation distance to it.
		names := append([]string{"statevec"}, tqsim.Backends()...)
		var ref map[uint64]int
		for i, name := range names {
			if i > 0 && name == "statevec" {
				continue
			}
			if name == "densmat" && c.NumQubits > 12 {
				continue
			}
			opt := tqsim.Options{Seed: cfg.seed, Backend: name, Parallelism: 4}
			res, err := tqsim.RunBackend(c, m, shots, opt)
			if err != nil {
				fmt.Printf("%-16s %-11s error: %v\n", c.Name, name, err)
				continue
			}
			if ref == nil {
				ref = res.Counts
			}
			fmt.Printf("%-16s %-11s %10v %8d %8.4f\n",
				c.Name, name, res.Elapsed.Round(time.Microsecond), len(res.Counts),
				metrics.TVDCounts(ref, res.Counts, res.Outcomes))
		}
	}

	// The scenario class the registry unlocks: a 40-qubit Clifford circuit
	// (a 16-TiB state vector) through the polynomial tableau engine.
	wide := tqsim.GHZCircuit(40)
	opt := tqsim.Options{Seed: cfg.seed, Backend: "stabilizer", Parallelism: 8}
	res, err := tqsim.RunBackend(wide, m, shots, opt)
	if err != nil {
		fmt.Println("wide clifford:", err)
		return
	}
	fmt.Printf("%-16s %-11s %10v %8d %8s  (a dense 40-qubit state is 16 TiB)\n",
		wide.Name, "stabilizer", res.Elapsed.Round(time.Microsecond), len(res.Counts), "n/a")
}
