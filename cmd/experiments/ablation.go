package main

import (
	"fmt"

	"tqsim"
	"tqsim/internal/metrics"
)

// runAblation contrasts the three partitioners of Section 3.2 across a
// medium circuit set: equal outcome budgets, measured work ratio and
// fidelity difference versus the baseline. DCP should dominate the
// accuracy/speedup frontier (the Figure 17 claim, suite-wide). The
// partitioner axis runs on the sweep engine — one sweep per circuit over
// Partitions [DCP, UCP, XCP] — so the three plans route through the same
// planner path and the noise-independent partitioners share work where the
// engine allows it.
func runAblation(cfg config) {
	maxQ, shots := suiteConfig(cfg)
	opt := expOptions(cfg)
	partitions := []tqsim.SweepPartition{
		{}, // DCP
		{Strategy: "ucp", Levels: 3},
		{Strategy: "xcp", Levels: 3},
	}
	fmt.Printf("%-14s %-6s %-16s %9s %9s\n",
		"Circuit", "Plan", "Structure", "WorkRatio", "FidDiff")
	agg := map[string][]float64{}
	fidAgg := map[string][]float64{}
	for _, b := range tqsim.BenchmarkSuite(maxQ) {
		c := b.Circuit
		if c.Len() < 30 {
			continue // too short for a 3-way comparison
		}
		ideal := tqsim.IdealDistribution(c)
		base, err := tqsim.RunBaselineBackend(c, tqsim.SycamoreNoise(), shots, opt)
		if err != nil {
			fmt.Printf("%-14s error: %v\n", c.Name, err)
			continue
		}
		baseF := tqsim.NormalizedFidelity(ideal, tqsim.CountsDist(base.Counts, c.NumQubits))
		basePerShot := float64(base.GateApplications) / float64(base.Shots)

		spec := tqsim.SweepSpec{
			Circuits:   []*tqsim.Circuit{c},
			Noise:      []tqsim.SweepNoisePoint{{Name: "DC"}},
			Shots:      []int{shots},
			Partitions: partitions,
			Seed:       opt.Seed,
			CopyCost:   opt.CopyCost,
			Epsilon:    opt.Epsilon,
			Backend:    opt.Backend,
		}
		res, err := tqsim.RunSweep(&spec)
		if err != nil {
			fmt.Printf("%-14s sweep error: %v\n", c.Name, err)
			continue
		}
		for _, pr := range res.Points {
			// Equal-size samples before comparing fidelities: thin the
			// tree's over-provisioned outcomes down to the baseline's count.
			thinned := tqsim.SubsampleCounts(pr.Counts, shots, tqsim.SweepSeed(opt.Seed, 0xab1a))
			f := tqsim.NormalizedFidelity(ideal, tqsim.CountsDist(thinned, c.NumQubits))
			d := baseF - f
			if d < 0 {
				d = -d
			}
			work := (float64(pr.GateApplications) / float64(pr.Outcomes)) / basePerShot
			fmt.Printf("%-14s %-6s %-16s %9.3f %9.4f\n",
				c.Name, pr.Partition, pr.Structure, work, d)
			agg[pr.Partition] = append(agg[pr.Partition], work)
			fidAgg[pr.Partition] = append(fidAgg[pr.Partition], d)
		}
	}
	fmt.Println("means:")
	for _, name := range []string{"DCP", "UCP:3", "XCP:3"} {
		fmt.Printf("  %-6s work %.3f fid-diff %.4f\n",
			name, metrics.Mean(agg[name]), metrics.Mean(fidAgg[name]))
	}
	fmt.Println("shape check: UCP's uniform arities pay the worst fidelity (its leaves")
	fmt.Println("descend from the fewest independent first-level samples); DCP holds")
	fmt.Println("fidelity near the baseline while matching or beating the others' work")
	fmt.Println("ratio — Section 3.2's motivation, suite-wide")
}
