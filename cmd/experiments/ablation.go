package main

import (
	"fmt"

	"tqsim"
	"tqsim/internal/metrics"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
)

// runAblation contrasts the three partitioners of Section 3.2 across a
// medium circuit set: equal outcome budgets, measured work ratio and
// fidelity difference versus the baseline. DCP should dominate the
// accuracy/speedup frontier (the Figure 17 claim, suite-wide).
func runAblation(cfg config) {
	maxQ, shots := suiteConfig(cfg)
	opt := expOptions(cfg)
	m := noise.NewSycamore()
	fmt.Printf("%-14s %-6s %-16s %9s %9s\n",
		"Circuit", "Plan", "Structure", "WorkRatio", "FidDiff")
	agg := map[string][]float64{}
	fidAgg := map[string][]float64{}
	for _, b := range tqsim.BenchmarkSuite(maxQ) {
		c := b.Circuit
		if c.Len() < 30 {
			continue // too short for a 3-way comparison
		}
		ideal := tqsim.IdealDistribution(c)
		base, err := tqsim.RunBaselineBackend(c, m, shots, opt)
		if err != nil {
			fmt.Printf("%-14s error: %v\n", c.Name, err)
			continue
		}
		baseF := tqsim.NormalizedFidelity(ideal, tqsim.CountsDist(base.Counts, c.NumQubits))
		basePerShot := float64(base.GateApplications) / float64(base.Shots)

		plans := []struct {
			name string
			plan *tqsim.Plan
		}{
			{"DCP", tqsim.PlanDCP(c, m, shots, opt)},
			{"UCP", partition.Uniform(c, shots, 3)},
			{"XCP", partition.Exponential(c, shots, 3)},
		}
		for _, pl := range plans {
			res, err := tqsim.RunPlan(pl.plan, m, opt)
			if err != nil {
				fmt.Printf("%-14s %-6s error: %v\n", c.Name, pl.name, err)
				continue
			}
			thinned := tqsim.SubsampleCounts(res.Counts, shots, opt.Seed^0xab1a)
			f := tqsim.NormalizedFidelity(ideal, tqsim.CountsDist(thinned, c.NumQubits))
			d := baseF - f
			if d < 0 {
				d = -d
			}
			work := (float64(res.GateApplications) / float64(res.Outcomes)) / basePerShot
			fmt.Printf("%-14s %-6s %-16s %9.3f %9.4f\n",
				c.Name, pl.name, pl.plan.Structure(), work, d)
			agg[pl.name] = append(agg[pl.name], work)
			fidAgg[pl.name] = append(fidAgg[pl.name], d)
		}
	}
	fmt.Println("means:")
	for _, name := range []string{"DCP", "UCP", "XCP"} {
		fmt.Printf("  %-4s work %.3f fid-diff %.4f\n",
			name, metrics.Mean(agg[name]), metrics.Mean(fidAgg[name]))
	}
	fmt.Println("shape check: UCP's uniform arities pay the worst fidelity (its leaves")
	fmt.Println("descend from the fewest independent first-level samples); DCP holds")
	fmt.Println("fidelity near the baseline while matching or beating the others' work")
	fmt.Println("ratio — Section 3.2's motivation, suite-wide")
}
