package main

import (
	"fmt"

	"tqsim"
	"tqsim/internal/metrics"
	"tqsim/internal/stabilizer"
	"tqsim/internal/workloads"
)

// runSensitivity reproduces the paper's §4.3 shot-count sensitivity study:
// reduced budgets (1,000 and 3,200 shots) magnify the statistical noise;
// TQSim's fidelity must keep tracking the baseline's while the speedup
// band persists.
func runSensitivity(cfg config) {
	shotsList := []int{1000, 3200}
	if cfg.full {
		shotsList = append(shotsList, 10000)
	}
	names := []string{"bv_n10", "qpe_n9_0", "qft_n10", "qsc_n10"}
	opt := expOptions(cfg)
	fmt.Printf("%-12s %7s %-16s %8s %9s %9s\n",
		"Circuit", "Shots", "Structure", "Speedup", "WorkRatio", "FidDiff")
	for _, name := range names {
		c := tqsim.BenchmarkByName(name)
		if c == nil {
			continue
		}
		for _, shots := range shotsList {
			var spd, wr, fd []float64
			var structure string
			for rep := 0; rep < 3; rep++ {
				o := opt
				o.Seed = cfg.seed + uint64(rep)*4421
				cmp, err := tqsim.Compare(c, tqsim.SycamoreNoise(), shots, o)
				if err != nil {
					fmt.Printf("%-12s %7d error: %v\n", name, shots, err)
					break
				}
				structure = cmp.Structure
				spd = append(spd, cmp.Speedup)
				wr = append(wr, cmp.WorkRatio)
				fd = append(fd, cmp.FidelityDiff)
			}
			if len(spd) == 0 {
				continue
			}
			fmt.Printf("%-12s %7d %-16s %7.2fx %9.3f %9.4f\n",
				name, shots, structure,
				metrics.Mean(spd), metrics.Mean(wr), metrics.Mean(fd))
		}
	}
	fmt.Println("shape check: fewer shots shrink A0's budget and the tree depth, but the")
	fmt.Println("fidelity difference stays in the statistical-noise band (paper §4.3)")
}

// runOracle cross-checks the trajectory engine against the independent CHP
// stabilizer simulator on noisy Clifford circuits — the exact-oracle check
// the paper's §4.2 "why BV" discussion enables.
func runOracle(cfg config) {
	shots := 20000
	if cfg.full {
		shots = 100000
	}
	p1, p2 := 0.005, 0.02
	fmt.Printf("depolarizing rates: 1q %.3f, 2q %.3f; %d shots per engine\n", p1, p2, shots)
	fmt.Printf("%-10s %6s %8s\n", "Circuit", "Gates", "TVD")
	for _, w := range []int{6, 8, 10, 12} {
		c := workloads.BV(w, workloads.BVSecret(w))
		stab, err := stabilizer.Counts(c, p1, p2, shots, cfg.seed)
		if err != nil {
			fmt.Printf("%-10s error: %v\n", c.Name, err)
			continue
		}
		sv := tqsim.RunBaseline(c, tqsim.DepolarizingNoise(p1, p2), shots,
			tqsim.Options{Seed: cfg.seed + 1, Parallelism: 8})
		a := metrics.FromCounts(stab, 1<<uint(w))
		b := metrics.FromCounts(sv.Counts, 1<<uint(w))
		fmt.Printf("%-10s %6d %8.4f\n", c.Name, c.Len(), metrics.TVD(a, b))
	}
	fmt.Println("shape check: two independent simulation formalisms (tableau vs state")
	fmt.Println("vector) agree to sampling noise on noisy Clifford workloads")
}
