package main

import (
	"fmt"
	"math"

	"tqsim"
	"tqsim/internal/core"
	"tqsim/internal/metrics"
	"tqsim/internal/stabilizer"
	"tqsim/internal/workloads"
)

// runSensitivity reproduces the paper's §4.3 shot-count sensitivity study:
// reduced budgets (1,000 and 3,200 shots) magnify the statistical noise;
// TQSim's fidelity must keep tracking the baseline's while the speedup
// band persists. The (shots × repeats) grid per circuit runs on the sweep
// engine — one tqsim sweep and one baseline sweep over identical derived
// seeds — instead of the previous hand-rolled loop, so the replicas share
// one plan/decision per cell and the Pauli points share ideal-prefix
// snapshots.
func runSensitivity(cfg config) {
	shotsList := []int{1000, 3200}
	if cfg.full {
		shotsList = append(shotsList, 10000)
	}
	names := []string{"bv_n10", "qpe_n9_0", "qft_n10", "qsc_n10"}
	opt := expOptions(cfg)
	const reps = 3
	fmt.Printf("%-12s %7s %-16s %8s %9s %9s\n",
		"Circuit", "Shots", "Structure", "Speedup", "WorkRatio", "FidDiff")
	for _, name := range names {
		c := tqsim.BenchmarkByName(name)
		if c == nil {
			continue
		}
		spec := tqsim.SweepSpec{
			Circuits: []*tqsim.Circuit{c},
			Noise:    []tqsim.SweepNoisePoint{{Name: "DC"}},
			Shots:    shotsList,
			Repeats:  reps,
			Seed:     cfg.seed,
			CopyCost: opt.CopyCost,
			Epsilon:  opt.Epsilon,
			Backend:  opt.Backend,
			Fidelity: true, // baseline points sample exactly `shots`; no bias
		}
		ideal := tqsim.IdealDistribution(c)
		tq, err := tqsim.RunSweep(&spec)
		if err != nil {
			fmt.Printf("%-12s error: %v\n", name, err)
			continue
		}
		baseSpec := spec
		baseSpec.Mode = "baseline"
		base, err := tqsim.RunSweep(&baseSpec)
		if err != nil {
			fmt.Printf("%-12s error: %v\n", name, err)
			continue
		}
		// Aggregate the replicas of each shots cell (points are expanded
		// shots-major, repeats innermost).
		for si, shots := range shotsList {
			var spd, wr, fd []float64
			var structure string
			for rep := 0; rep < reps; rep++ {
				tp := tq.Points[si*reps+rep]
				bp := base.Points[si*reps+rep]
				structure = tp.Structure
				spd = append(spd, core.Speedup(bp.Elapsed, tp.Elapsed))
				basePerShot := float64(bp.GateApplications) / float64(bp.Outcomes)
				tqPerOutcome := float64(tp.GateApplications) / float64(tp.Outcomes)
				if basePerShot > 0 {
					wr = append(wr, tqPerOutcome/basePerShot)
				}
				// Equal-size samples before comparing fidelities: the tree
				// over-provisions outcomes past the requested shots, and
				// fidelity estimates carry a sample-size bias (the same
				// thinning tqsim.Compare applies).
				thinned := tqsim.SubsampleCounts(tp.Counts, shots, tqsim.SweepSeed(tp.Seed, 0x5eed))
				tqF := tqsim.NormalizedFidelity(ideal, tqsim.CountsDist(thinned, c.NumQubits))
				fd = append(fd, math.Abs(bp.Fidelity-tqF))
			}
			fmt.Printf("%-12s %7d %-16s %7.2fx %9.3f %9.4f\n",
				name, shots, structure,
				metrics.Mean(spd), metrics.Mean(wr), metrics.Mean(fd))
		}
	}
	fmt.Println("shape check: fewer shots shrink A0's budget and the tree depth, but the")
	fmt.Println("fidelity difference stays in the statistical-noise band (paper §4.3)")
}

// runOracle cross-checks the trajectory engine against the independent CHP
// stabilizer simulator on noisy Clifford circuits — the exact-oracle check
// the paper's §4.2 "why BV" discussion enables.
func runOracle(cfg config) {
	shots := 20000
	if cfg.full {
		shots = 100000
	}
	p1, p2 := 0.005, 0.02
	fmt.Printf("depolarizing rates: 1q %.3f, 2q %.3f; %d shots per engine\n", p1, p2, shots)
	fmt.Printf("%-10s %6s %8s\n", "Circuit", "Gates", "TVD")
	for _, w := range []int{6, 8, 10, 12} {
		c := workloads.BV(w, workloads.BVSecret(w))
		stab, err := stabilizer.Counts(c, p1, p2, shots, cfg.seed)
		if err != nil {
			fmt.Printf("%-10s error: %v\n", c.Name, err)
			continue
		}
		sv := tqsim.RunBaseline(c, tqsim.DepolarizingNoise(p1, p2), shots,
			tqsim.Options{Seed: tqsim.SweepSeed(cfg.seed, 1), Parallelism: 8})
		a := metrics.FromCounts(stab, 1<<uint(w))
		b := metrics.FromCounts(sv.Counts, 1<<uint(w))
		fmt.Printf("%-10s %6d %8.4f\n", c.Name, c.Len(), metrics.TVD(a, b))
	}
	fmt.Println("shape check: two independent simulation formalisms (tableau vs state")
	fmt.Println("vector) agree to sampling noise on noisy Clifford workloads")
}
