package main

import (
	"fmt"
	"math"

	"tqsim"
	"tqsim/internal/cluster"
	"tqsim/internal/graphs"
	"tqsim/internal/metrics"
	"tqsim/internal/noise"
	"tqsim/internal/partition"
	"tqsim/internal/workloads"
)

// runFig13 reports modeled strong and weak scaling on the simulated
// cluster.
func runFig13(cfg config) {
	m := noise.NewSycamore()
	nodes := []int{1, 2, 4, 8, 16, 32}
	shots := 128

	fmt.Println("strong scaling (modeled speedup over 1 node):")
	fmt.Printf("%-10s", "Circuit")
	for _, n := range nodes {
		fmt.Printf(" %7s", fmt.Sprintf("n=%d", n))
	}
	fmt.Println()
	for _, w := range []int{22, 24, 26, 28, 30} {
		for _, kind := range []string{"BV", "QFT"} {
			var c *tqsim.Circuit
			if kind == "BV" {
				c = workloads.BV(w, workloads.BVSecret(w))
			} else {
				c = workloads.QFT(w, true)
			}
			points := cluster.StrongScaling(c, m, shots, nodes)
			fmt.Printf("%-10s", fmt.Sprintf("%s %d", kind, w))
			for _, p := range points {
				fmt.Printf(" %7.2f", p.Speedup)
			}
			fmt.Println()
		}
	}
	fmt.Println("shape check: wider circuits scale further before communication dominates")

	fmt.Println("\nweak scaling (modeled hours; nodes double with qubits 24..29):")
	fmt.Printf("%-7s %6s %12s %12s %12s %12s\n",
		"Qubits", "Nodes", "BV base", "BV TQSim", "QFT base", "QFT TQSim")
	weakShots := 8192
	for i, w := range []int{24, 25, 26, 27, 28, 29} {
		n := 1 << uint(i)
		cfgNet := cluster.DefaultNetwork(n)
		row := []float64{}
		for _, kind := range []string{"BV", "QFT"} {
			var c *tqsim.Circuit
			if kind == "BV" {
				c = workloads.BV(w, workloads.BVSecret(w))
			} else {
				c = workloads.QFT(w, true)
			}
			base := cfgNet.EstimateBaseline(c, m, weakShots)
			plan := partition.Dynamic(c, m, weakShots,
				partition.DCPOptions{CopyCost: 30})
			tq := cfgNet.EstimatePlan(plan, m)
			row = append(row, base.TotalSec/3600, tq.TotalSec/3600)
		}
		fmt.Printf("%-7d %6d %12.2f %12.2f %12.2f %12.2f\n",
			w, n, row[0], row[1], row[2], row[3])
	}
	fmt.Println("shape check: TQSim undercuts the baseline at every point; times grow with")
	fmt.Println("gate count as qubits rise (Figure 13b)")
}

// runFig18 regenerates the QAOA max-cut cost landscapes.
func runFig18(cfg config) {
	type study struct {
		name  string
		graph *graphs.Graph
	}
	gridN := 9
	shots := 300
	studies := []study{
		{"random-6", graphs.Random(6, 0.5, 11)},
		{"star-6", graphs.Star(6)},
		{"3regular-8", graphs.Regular3(8)},
	}
	if cfg.full {
		gridN, shots = 15, 1000
		studies = []study{
			{"random-9", graphs.Random(9, 0.5, 11)},
			{"star-9", graphs.Star(9)},
			{"3regular-12", graphs.Regular3(12)},
		}
	}
	opt := expOptions(cfg)
	m := tqsim.SycamoreNoise()
	fmt.Printf("%-12s %7s %7s %9s %9s %8s\n",
		"Graph", "Qubits", "Points", "Base(s)", "TQSim(s)", "MSE")
	for _, s := range studies {
		var baseLand, tqLand []float64
		var baseSec, tqSec float64
		for i := 0; i < gridN; i++ {
			for j := 0; j < gridN; j++ {
				gamma := -math.Pi + 2*math.Pi*float64(i)/float64(gridN-1)
				beta := -math.Pi + 2*math.Pi*float64(j)/float64(gridN-1)
				c := workloads.QAOA(s.graph, []workloads.QAOAParams{{Gamma: gamma, Beta: beta}})
				seed := tqsim.SweepSeed(cfg.seed, 2*(i*gridN+j))
				baseOpt := opt
				baseOpt.Seed = seed
				base, err := tqsim.RunBaselineBackend(c, m, shots, baseOpt)
				if err != nil {
					fmt.Printf("  error: %v\n", err)
					continue
				}
				baseSec += base.Elapsed.Seconds()
				baseLand = append(baseLand, workloads.QAOAExpectedCutCounts(s.graph, base.Counts))
				runOpt := opt
				runOpt.Seed = tqsim.SweepSeed(cfg.seed, 2*(i*gridN+j)+1)
				res, err := tqsim.RunTQSim(c, m, shots, runOpt)
				if err != nil {
					fmt.Printf("%-12s error: %v\n", s.name, err)
					return
				}
				tqSec += res.Elapsed.Seconds()
				tqLand = append(tqLand, workloads.QAOAExpectedCutCounts(s.graph, res.Counts))
			}
		}
		// Normalize cuts to [0,1] by the optimum so MSE compares to the
		// paper's scale.
		opt := float64(s.graph.MaxCut())
		for i := range baseLand {
			baseLand[i] /= opt
			tqLand[i] /= opt
		}
		mse := metrics.MSE(baseLand, tqLand)
		fmt.Printf("%-12s %7d %7d %9.2f %9.2f %8.5f\n",
			s.name, s.graph.N, gridN*gridN, baseSec, tqSec, mse)
	}
	fmt.Println("shape check: TQSim's landscape matches the baseline's (paper MSE 0.001-0.002)")
	fmt.Println("at a clear wall-time saving over the grid search")
}
