// Command tqsimd is the long-running TQSim batch service: an HTTP/JSON
// daemon that accepts OpenQASM (or benchmark-suite) simulation jobs,
// admission-controls them with the planner's cost and memory estimates,
// batches shots through a bounded scheduler, caches plans in a bounded LRU
// keyed by (circuit hash, noise, options), and streams per-batch
// histograms.
//
// Roles: a plain tqsimd serves jobs single-process. With -worker it also
// accepts shard leases (POST /v1/shard) from a coordinator; with -workers
// (a static list) or -accept-workers (elastic membership) it coordinates a
// fleet, sharding each multi-batch job's batches across the workers and
// merging the returned histograms deterministically. A worker started with
// -join announces itself to the coordinator (POST /v1/workers) and
// heartbeats on -heartbeat-interval, so workers join, leave and recover
// mid-job without any restart: the coordinator's liveness state machine
// (alive → suspect → dead → revived) feeds every in-flight dispatch loop.
//
// Quickstart (single process):
//
//	tqsimd -addr :8651 &
//	curl -s localhost:8651/v1/jobs -d '{"circuit":"bv_n10","noise":"DC","shots":2000,"seed":1}'
//	curl -s localhost:8651/v1/plan -d '{"circuit":"qft_n12","noise":"DC","shots":2000}'
//
// Result replay: finished jobs and sweeps land in a content-addressed store
// (-store-entries, on by default), so repeating the first curl above returns
// the byte-identical body without simulating — watch results_hits in
// /v1/stats. With -store-dir the store persists across restarts:
//
//	tqsimd -addr :8651 -store-dir /var/lib/tqsimd/results &
//	curl -s localhost:8651/v1/jobs -d '{"circuit":"qft_n12","noise":"DC","shots":4000,"seed":7}'
//	# ... daemon restarts ...
//	curl -s localhost:8651/v1/jobs -d '{"circuit":"qft_n12","noise":"DC","shots":4000,"seed":7}'  # replayed from disk
//
// Distributed, static pool (one coordinator, two workers):
//
//	tqsimd -worker -addr :8751 &
//	tqsimd -worker -addr :8752 &
//	tqsimd -addr :8651 -workers http://localhost:8751,http://localhost:8752 &
//	curl -s localhost:8651/v1/jobs -d '{"circuit":"qft_n12","noise":"DC","shots":4000,"seed":1,"batch_shots":500}'
//
// Distributed, elastic fleet (workers join and leave at will):
//
//	tqsimd -addr :8651 -accept-workers &
//	tqsimd -worker -addr :8751 -join http://localhost:8651 &
//	tqsimd -worker -addr :8752 -join http://localhost:8651 &   # join any time, even mid-job
//
// Endpoints:
//
//	POST /v1/jobs      run a job; {"stream":true} switches to NDJSON batches
//	POST /v1/sweeps    run a parameter/noise sweep grid; streams one NDJSON
//	                   line per point (plan & ideal-prefix reuse across
//	                   points; {"stream":false} for one JSON body)
//	POST /v1/plan      planner decision only (explainable dispatch, no run)
//	POST /v1/shard     execute a leased batch or sweep-point range (workers)
//	POST /v1/workers   worker self-registration + heartbeat (coordinators)
//	GET  /v1/worker    capacity advertisement (health + placement input)
//	GET  /v1/backends  registered engines plus "auto"
//	GET  /v1/stats     scheduler/cache/admission/shard counters, the result
//	                   store (results_hits/misses/entries/bytes) and snapshot
//	                   cache (snapshot_hits/misses/bytes) counters, plus the
//	                   per-worker registry: liveness state, breaker state,
//	                   heartbeat age, retries, requeues, utilization
//	GET  /healthz      liveness (503 while draining)
//
// Shutdown: SIGTERM (or SIGINT) starts a drain — new submissions get 503
// with a Retry-After header while in-flight jobs run to completion, then
// the listener closes (http.Server.Shutdown bounded by -drain-timeout).
//
// Determinism: a single-batch job's histogram is byte-identical to
// tqsim.RunTQSim at the same seed and options; multi-batch jobs merge
// batches run at deterministically derived seeds (serve.BatchSeed) into a
// histogram that is byte-identical whether the batches ran in one process
// or were sharded across any number of workers — including after a
// mid-job worker failure and re-dispatch. Sweep points obey the same rule
// at their own derived seeds, so a distributed sweep reassembles
// byte-identically to a local one. Every shard lease is bounded by
// -lease-timeout: a worker that accepts a lease and hangs is declared dead
// and its range re-dispatched instead of stalling the job.
//
// Fault tolerance: failed lease and probe calls retry with exponential
// backoff and jitter (-lease-retries); a worker answering 503 with
// Retry-After is retried after a capped wait before being excluded from
// the job; every shard response carries a sha256 checksum so corrupted
// payloads are requeued, never merged; and a per-worker circuit breaker
// (-breaker-threshold consecutive failures → open, half-open trial after
// -breaker-cooldown) keeps a flapping worker out of dispatch. See
// docs/architecture.md "Fault tolerance".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tqsim/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8651", "listen address")
		concurrent   = flag.Int("max-concurrent", 0, "jobs executing simultaneously (0 = GOMAXPROCS)")
		queue        = flag.Int("queue-depth", 16, "jobs allowed to wait for a slot before 429")
		budgetMB     = flag.Int64("memory-budget-mb", 0, "total planner-estimated state memory across running jobs, MiB (0 = unlimited)")
		maxShots     = flag.Int("max-shots", 0, "per-job shot cap (0 = default 4194304)")
		batchShots   = flag.Int("batch-shots", 0, "default shots per batch when jobs don't choose (0 = one batch)")
		planEntries  = flag.Int("plan-cache-entries", 0, "plan cache LRU cap (0 = default 256)")
		worker       = flag.Bool("worker", false, "accept shard leases from a coordinator (POST /v1/shard)")
		sweepPoints  = flag.Int("max-sweep-points", 0, "per-sweep expanded grid cap (0 = default 4096)")
		leaseTimeout = flag.Duration("lease-timeout", 0, "per-lease round-trip bound (incl. retries) before a worker is declared dead (0 = default 10m, negative = unlimited)")
		workers      = flag.String("workers", "", "comma-separated worker base URLs; shard multi-batch jobs across them")
		acceptJoins  = flag.Bool("accept-workers", false, "coordinate an elastic fleet: accept worker self-registration on POST /v1/workers")
		join         = flag.String("join", "", "coordinator base URL to register with and heartbeat to (worker role)")
		advertise    = flag.String("advertise", "", "base URL the coordinator should dial this worker at (default derived from -addr)")
		heartbeat    = flag.Duration("heartbeat-interval", 0, "heartbeat cadence to the -join coordinator (0 = default 1.5s)")
		leaseRetries = flag.Int("lease-retries", 0, "retry attempts per failed lease/probe call, exponential backoff + jitter (0 = default 2, negative = none)")
		breakerN     = flag.Int("breaker-threshold", 0, "consecutive lease failures that open a worker's circuit breaker (0 = default 5, negative = disabled)")
		breakerCool  = flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before the half-open trial lease (0 = default 5s)")
		suspectAfter = flag.Duration("suspect-after", 0, "heartbeat age after which a joined worker gets no new leases (0 = default 5s)")
		deadAfter    = flag.Duration("dead-after", 0, "heartbeat age after which a joined worker is declared dead (0 = default 15s)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before closing connections")
		storeEntries = flag.Int("store-entries", 512, "content-addressed result store memory LRU cap (0 disables the store unless -store-dir is set)")
		storeDir     = flag.String("store-dir", "", "persist stored results to this directory so replays survive restarts (empty = memory-only)")
		storeMaxMB   = flag.Int64("store-max-mb", 1024, "size cap for -store-dir, MiB; oldest entries evicted beyond it")
		snapCacheMB  = flag.Int64("snapshot-cache-mb", 256, "cross-job ideal-prefix snapshot cache, MiB (0 disables; negative = unbounded)")
	)
	flag.Parse()

	var pool []string
	if *workers != "" {
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				pool = append(pool, u)
			}
		}
	}
	srv := serve.New(serve.Config{
		MaxConcurrent:     *concurrent,
		QueueDepth:        *queue,
		MemoryBudgetBytes: *budgetMB << 20,
		MaxShots:          *maxShots,
		DefaultBatchShots: *batchShots,
		PlanCacheEntries:  *planEntries,
		MaxSweepPoints:    *sweepPoints,
		WorkerMode:        *worker,
		Workers:           pool,
		AcceptWorkers:     *acceptJoins,
		LeaseTimeout:      *leaseTimeout,
		LeaseRetries:      *leaseRetries,
		BreakerThreshold:  *breakerN,
		BreakerCooldown:   *breakerCool,
		SuspectAfter:      *suspectAfter,
		DeadAfter:         *deadAfter,
		StoreEntries:      *storeEntries,
		StoreDir:          *storeDir,
		StoreMaxBytes:     *storeMaxMB << 20,
		SnapshotCacheBytes: func() int64 {
			if *snapCacheMB < 0 {
				return -1 // serve treats <= 0 as disabled; core treats <= 0 as unbounded
			}
			return *snapCacheMB << 20
		}(),
	})
	if err := srv.StoreError(); err != nil {
		// A broken store-dir must fail loudly at startup: the operator asked
		// for persistent replays and silently running without them would
		// masquerade as cache misses forever.
		log.Fatalf("tqsimd: result store: %v", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if *join != "" {
		self := *advertise
		if self == "" {
			// Derive a dialable base URL from the listen address; a bare
			// ":port" can only mean loopback from the coordinator's side.
			host := *addr
			if strings.HasPrefix(host, ":") {
				host = "127.0.0.1" + host
			}
			self = "http://" + host
		}
		go srv.JoinFleet(ctx, *join, self, *heartbeat, func(err error) {
			log.Printf("tqsimd heartbeat to %s failed: %v", *join, err)
		})
	}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		// Drain in two phases: first keep the listener open while in-flight
		// jobs finish, so late submissions bounce 503 (+Retry-After) rather
		// than connection-refused; then close the listener and remaining
		// idle connections.
		srv.BeginDrain()
		log.Printf("tqsimd draining (up to %v)", *drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.DrainWait(sctx); err != nil {
			log.Printf("tqsimd drain incomplete: %v", err)
		}
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("tqsimd shutdown incomplete: %v", err)
		}
	}()

	role := "single-process"
	switch {
	case *worker && *join != "":
		role = "worker, joined to " + *join
	case *worker:
		role = "worker"
	case *acceptJoins:
		role = fmt.Sprintf("elastic coordinator (%d static workers)", len(pool))
	case len(pool) > 0:
		role = fmt.Sprintf("coordinator over %d workers", len(pool))
	}
	fmt.Printf("tqsimd (%s) listening on %s\n", role, *addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-shutdownDone
}
