// Command tqsimd is the long-running TQSim batch service: an HTTP/JSON
// daemon that accepts OpenQASM (or benchmark-suite) simulation jobs,
// admission-controls them with the planner's cost and memory estimates,
// batches shots through a bounded scheduler, caches plans keyed by
// (circuit hash, noise, options), and streams per-batch histograms.
//
// Quickstart:
//
//	tqsimd -addr :8651 &
//	curl -s localhost:8651/v1/jobs -d '{"circuit":"bv_n10","noise":"DC","shots":2000,"seed":1}'
//	curl -s localhost:8651/v1/plan -d '{"circuit":"qft_n12","noise":"DC","shots":2000}'
//
// Endpoints:
//
//	POST /v1/jobs      run a job; {"stream":true} switches to NDJSON batches
//	POST /v1/plan      planner decision only (explainable dispatch, no run)
//	GET  /v1/backends  registered engines plus "auto"
//	GET  /v1/stats     scheduler/cache/admission counters
//	GET  /healthz      liveness
//
// Determinism: a single-batch job's histogram is byte-identical to
// tqsim.RunTQSim at the same seed and options; multi-batch jobs merge
// batches run at deterministically derived seeds (serve.BatchSeed).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"tqsim/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8651", "listen address")
		concurrent = flag.Int("max-concurrent", 0, "jobs executing simultaneously (0 = GOMAXPROCS)")
		queue      = flag.Int("queue-depth", 16, "jobs allowed to wait for a slot before 429")
		budgetMB   = flag.Int64("memory-budget-mb", 0, "total planner-estimated state memory across running jobs, MiB (0 = unlimited)")
		maxShots   = flag.Int("max-shots", 0, "per-job shot cap (0 = default 4194304)")
		batchShots = flag.Int("batch-shots", 0, "default shots per batch when jobs don't choose (0 = one batch)")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxConcurrent:     *concurrent,
		QueueDepth:        *queue,
		MemoryBudgetBytes: *budgetMB << 20,
		MaxShots:          *maxShots,
		DefaultBatchShots: *batchShots,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("tqsimd listening on %s\n", *addr)
	log.Fatal(httpSrv.ListenAndServe())
}
