// Command tqsim simulates a benchmark circuit (or an OpenQASM 2.0 file)
// under a noise model, either with the conventional baseline simulator,
// with TQSim's tree-based reuse, or with both for a side-by-side comparison.
//
// Examples:
//
//	tqsim -circuit qft_n12 -shots 2000                  # compare (default)
//	tqsim -circuit qv_n10 -mode tqsim -structure 64,4,4 # explicit tree
//	tqsim -circuit bv_n16 -mode tqsim -explain          # planner decision + run
//	tqsim -qasm prog.qasm -noise TRR -mode baseline
//	tqsim -sweep spec.json                              # grid sweep w/ reuse
//	tqsim -list                                         # suite inventory
//
// A sweep spec is the JSON form of tqsim.SweepSpec — circuit (suite name or
// inline QASM) × noise axis × shots axis × partitioner axis × repeats:
//
//	{"circuit": "qft_n12",
//	 "noise": [{"name": "DC"}, {"p1": 0.002, "p2": 0.01}],
//	 "shots": [1000, 3200], "repeats": 3, "seed": 1, "fidelity": true}
//
// Points run at derived seeds (point 0 keeps the base seed) and each
// point's histogram is byte-identical to running it standalone; the sweep
// engine shares plans and ideal-prefix snapshots across points, so the
// grid costs measurably less than the sum of its points.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"sort"
	"strconv"
	"strings"

	"tqsim"
)

func main() {
	var (
		circuitName = flag.String("circuit", "", "suite circuit name (e.g. qft_n12); see -list")
		qasmPath    = flag.String("qasm", "", "OpenQASM 2.0 file to simulate instead of a suite circuit")
		noiseName   = flag.String("noise", "DC", "noise model: DC, DCR, TR, TRR, AD, ADR, PD, PDR, ALL, ideal")
		shots       = flag.Int("shots", 2000, "number of shots")
		seed        = flag.Uint64("seed", 1, "trajectory stream seed")
		mode        = flag.String("mode", "compare", "baseline | tqsim | compare | ideal")
		structure   = flag.String("structure", "", "explicit tree structure, e.g. 64,4,4 (tqsim mode)")
		copyCost    = flag.Float64("copycost", 0, "state copy cost in gate-equivalents (0 = profile)")
		backendName = flag.String("backend", "", "execution engine: auto, "+strings.Join(tqsim.Backends(), ", ")+" (default: auto for tqsim/compare, statevec for baseline)")
		explain     = flag.Bool("explain", false, "print the planner's engine decision (chosen + rejected candidates) before running")
		nodes       = flag.Int("nodes", 0, "cluster backend shard count (power of two; 0 = default)")
		fusionFlag  = flag.Bool("fusion", false, "use the gate-fusion backend (deprecated: -backend fusion)")
		topK        = flag.Int("top", 8, "top outcomes to print")
		list        = flag.Bool("list", false, "list the benchmark suite and exit")
		sweepPath   = flag.String("sweep", "", "run a parameter/noise sweep from a JSON spec file (tqsim.SweepSpec)")
		sweepJSON   = flag.Bool("json", false, "with -sweep, emit NDJSON per-point lines instead of a table")
	)
	flag.Parse()

	if *list {
		printSuite()
		return
	}
	if *sweepPath != "" {
		runSweepFile(*sweepPath, *sweepJSON)
		return
	}
	c, err := loadCircuit(*circuitName, *qasmPath)
	if err != nil {
		fatal(err)
	}
	if *backendName != "" && *backendName != tqsim.AutoBackend &&
		!slices.Contains(tqsim.Backends(), *backendName) {
		fatal(fmt.Errorf("unknown backend %q (have auto, %s)",
			*backendName, strings.Join(tqsim.Backends(), ", ")))
	}
	model := tqsim.NoiseByName(*noiseName)
	opt := tqsim.Options{
		Seed:             *seed,
		CopyCost:         *copyCost,
		Backend:          *backendName,
		ClusterNodes:     *nodes,
		UseFusionBackend: *fusionFlag,
	}
	if opt.CopyCost == 0 {
		opt.CopyCost = tqsim.ProfileCopyCost(min(c.NumQubits, 14), 200)
		// Pure-Go gate kernels can be slower than memcpy, which would let
		// DCP cut single-gate subcircuits; clamp to the lowest published
		// Figure 10 machine value so plans match optimized backends.
		if opt.CopyCost < 5 {
			opt.CopyCost = 5
		}
	}
	fmt.Printf("circuit %s: %d qubits, %d gates, depth %d | noise %s | copy cost %.1f\n",
		c.Name, c.NumQubits, c.Len(), c.Depth(), model.Name(), opt.CopyCost)

	if *explain {
		// Explain the plan this invocation will actually run: the flat plan
		// for baseline mode, the explicit structure when one is given, the
		// DCP tree otherwise.
		var plan *tqsim.Plan
		switch {
		case *mode == "baseline" || *mode == "ideal":
			plan = tqsim.PlanBaseline(c, *shots)
		case *structure != "":
			arities, err := parseStructure(*structure)
			if err != nil {
				fatal(err)
			}
			plan = tqsim.PlanStructure(c, arities)
		default:
			plan = tqsim.PlanDCP(c, model, *shots, opt)
		}
		d, err := tqsim.DecidePlan(plan, model, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(d)
		if name := opt.Backend; name != "" && name != tqsim.AutoBackend && name != d.Backend {
			fmt.Printf("note: -backend %s overrides the planner's choice\n", name)
		}
	}

	switch *mode {
	case "ideal":
		res := tqsim.RunIdeal(c, *shots, *seed)
		fmt.Printf("ideal: %d shots in %v\n", res.Shots, res.Elapsed)
		printCounts(res.Counts, c.NumQubits, *topK)
	case "baseline":
		res, err := tqsim.RunBaselineBackend(c, model, *shots, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("baseline: %d shots, %d kernel ops in %v\n",
			res.Shots, res.GateApplications, res.Elapsed)
		printCounts(res.Counts, c.NumQubits, *topK)
	case "tqsim":
		var res *tqsim.TreeResult
		if *structure != "" {
			arities, err := parseStructure(*structure)
			if err != nil {
				fatal(err)
			}
			res, err = tqsim.RunPlan(tqsim.PlanStructure(c, arities), model, opt)
			if err != nil {
				fatal(err)
			}
		} else {
			res, err = tqsim.RunTQSim(c, model, *shots, opt)
			if err != nil {
				fatal(err)
			}
		}
		fmt.Printf("tqsim %s: %d outcomes, %d kernel ops, %d copies, peak %.1f MiB in %v\n",
			res.Structure, res.Outcomes, res.GateApplications, res.StateCopies,
			float64(res.PeakStateBytes)/(1<<20), res.Elapsed)
		printCounts(res.Counts, c.NumQubits, *topK)
	case "compare":
		cmp, err := tqsim.Compare(c, model, *shots, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("structure   %s (%d outcomes)\n", cmp.Structure, cmp.Outcomes)
		fmt.Printf("baseline    %v  (fidelity %.4f)\n", cmp.BaselineTime, cmp.BaselineFidelity)
		fmt.Printf("tqsim       %v  (fidelity %.4f)\n", cmp.TQSimTime, cmp.TQSimFidelity)
		fmt.Printf("speedup     %.2fx (work ratio %.3f)\n", cmp.Speedup, cmp.WorkRatio)
		fmt.Printf("fid. diff   %.4f\n", cmp.FidelityDiff)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

// runSweepFile executes a sweep spec file, printing points as they
// complete (completion order; each point's content is deterministic).
func runSweepFile(path string, asJSON bool) {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var spec tqsim.SweepSpec
	if err := json.Unmarshal(src, &spec); err != nil {
		fatal(fmt.Errorf("sweep spec %s: %w", path, err))
	}
	if !asJSON {
		fmt.Printf("%-14s %-14s %7s %-8s %3s %-12s %-10s %10s %8s %10s\n",
			"Circuit", "Noise", "Shots", "Plan", "Rep", "Structure", "Backend", "Ops", "Reused", "Fidelity")
	}
	enc := json.NewEncoder(os.Stdout)
	res, err := tqsim.RunSweepContext(context.Background(), &spec, func(pr *tqsim.SweepPointResult) error {
		if asJSON {
			line := map[string]any{
				"index": pr.Index, "circuit": pr.Circuit, "noise": pr.Noise,
				"shots": pr.Shots, "partition": pr.Partition, "rep": pr.Rep,
				"seed": pr.Seed, "backend": pr.Backend, "structure": pr.Structure,
				"outcomes": pr.Outcomes, "ops": pr.GateApplications,
				"prefix_hits": pr.PrefixReuseHits,
			}
			if pr.HasFidelity {
				line["fidelity"] = pr.Fidelity
			}
			return enc.Encode(line)
		}
		fid := "-"
		if pr.HasFidelity {
			fid = fmt.Sprintf("%10.4f", pr.Fidelity)
		}
		fmt.Printf("%-14s %-14s %7d %-8s %3d %-12s %-10s %10d %8d %10s\n",
			pr.Circuit, pr.Noise, pr.Shots, pr.Partition, pr.Rep,
			pr.Structure, pr.Backend, pr.GateApplications, pr.PrefixReuseHits, fid)
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if !asJSON {
		fmt.Printf("\n%d points | %d plans built, %d decisions | %d kernel ops | %d prefix-reuse hits | %v\n",
			len(res.Points), res.PlansBuilt, res.DecisionsBuilt,
			res.GateApplications, res.PrefixReuseHits, res.Elapsed.Round(1e6))
	}
}

func loadCircuit(name, path string) (*tqsim.Circuit, error) {
	switch {
	case name != "" && path != "":
		return nil, fmt.Errorf("use either -circuit or -qasm, not both")
	case path != "":
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return tqsim.ParseQASM(path, string(src))
	case name != "":
		c := tqsim.BenchmarkByName(name)
		if c == nil {
			return nil, fmt.Errorf("unknown suite circuit %q (see -list)", name)
		}
		return c, nil
	}
	return nil, fmt.Errorf("pass -circuit <name> or -qasm <file>; -list shows the suite")
}

func parseStructure(s string) ([]int, error) {
	parts := strings.Split(strings.Trim(s, "() "), ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad structure element %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func printSuite() {
	fmt.Println("backends:", strings.Join(tqsim.Backends(), ", "))
	fmt.Println("benchmark suite (48 circuits, 8 classes):")
	for _, b := range tqsim.BenchmarkSuite(0) {
		c := b.Circuit
		fmt.Printf("  %-14s %2d qubits %5d gates\n", c.Name, c.NumQubits, c.Len())
	}
}

func printCounts(counts map[uint64]int, n, top int) {
	type kv struct {
		k uint64
		v int
	}
	var rows []kv
	total := 0
	for k, v := range counts {
		rows = append(rows, kv{k, v})
		total += v
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	if top > len(rows) {
		top = len(rows)
	}
	for _, r := range rows[:top] {
		fmt.Printf("  |%0*b>  %6d  (%.3f)\n", n, r.k, r.v, float64(r.v)/float64(total))
	}
	if len(rows) > top {
		fmt.Printf("  ... %d more outcomes\n", len(rows)-top)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tqsim:", err)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
