// Command benchreport measures the repo's performance trajectory and
// gates regressions against the previously committed point.
//
// One run collects, on one machine:
//
//   - gate-kernel throughput (amps/s) at serial and parallel widths,
//   - the cross-point sweep prefix-reuse work ratio (BenchmarkSweepReuse's
//     exact spec),
//   - fixed-rate serve quantiles and goodput (tqsimgen's engine against an
//     in-process tqsimd),
//   - the saturation knee (optional, -knee-trial > 0),
//
// and writes them as a schema'd BENCH_<pr>.json. With -check it compares
// the fresh run against a baseline file (-against, or "auto" = the
// highest-numbered committed BENCH_*.json) using noise-tolerant
// thresholds (see gate.go) and exits 1 on regression — the CI trajectory
// gate. The output file is written before the gate verdict, so a failing
// run still leaves its evidence on disk.
//
// With -diff A B it skips collection entirely and prints a benchstat-style
// before/after table of two committed BENCH files.
//
//	benchreport -pr 8                        # write BENCH_8.json
//	benchreport -pr 9 -check -against auto   # gate PR 9 against BENCH_8.json
//	benchreport -diff BENCH_8.json BENCH_9.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

func main() {
	var (
		pr        = flag.Int("pr", 0, "PR number for the output file name (required unless -out)")
		out       = flag.String("out", "", "output path (default BENCH_<pr>.json)")
		against   = flag.String("against", "", `baseline BENCH file to compare with; "auto" = highest-numbered BENCH_*.json`)
		check     = flag.Bool("check", false, "exit 1 when the fresh run regresses past the thresholds")
		rate      = flag.Float64("serve-rate", 40, "fixed offered rate for the serve measurement")
		duration  = flag.Duration("serve-duration", 8*time.Second, "length of the serve measurement")
		slo       = flag.Duration("slo-p99", 500*time.Millisecond, "p99 SLO for goodput and the knee")
		kneeTrial = flag.Duration("knee-trial", 2*time.Second, "per-trial duration of the knee search (0 = skip the knee)")
		diff      = flag.Bool("diff", false, "print a before/after table of two BENCH files (args: A B) and exit")
	)
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fatalf("-diff needs exactly two BENCH files")
		}
		a, err := loadBench(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		b, err := loadBench(flag.Arg(1))
		if err != nil {
			fatalf("%v", err)
		}
		printDiff(a, b)
		return
	}
	if *out == "" {
		if *pr <= 0 {
			fatalf("-pr (or -out) is required")
		}
		*out = fmt.Sprintf("BENCH_%d.json", *pr)
	}

	// Resolve and load the baseline before the (slow) collection, so a
	// bad -against path fails in seconds, not minutes.
	var baseline *Bench
	if *against != "" {
		path := *against
		if path == "auto" {
			var err error
			path, err = resolveBaseline(".")
			if err != nil {
				fatalf("resolving baseline: %v", err)
			}
			if path == "" {
				fmt.Fprintln(os.Stderr, "benchreport: no committed BENCH_*.json yet; nothing to gate against")
			}
		}
		if path != "" {
			b, err := loadBench(path)
			if err != nil {
				fatalf("baseline: %v", err)
			}
			baseline = b
			fmt.Fprintf(os.Stderr, "benchreport: gating against %s (PR %d)\n", path, b.PR)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	bench := &Bench{Schema: BenchSchema, PR: *pr, GoVer: runtime.Version()}

	fmt.Fprintln(os.Stderr, "benchreport: timing kernels...")
	bench.Kernels = collectKernels()

	fmt.Fprintln(os.Stderr, "benchreport: measuring sweep reuse ratio...")
	ratio, err := collectSweepRatio()
	if err != nil {
		fatalf("%v", err)
	}
	bench.SweepWorkRatio = ratio

	fmt.Fprintf(os.Stderr, "benchreport: serving %.0f req/s for %v...\n", *rate, *duration)
	sb, err := collectServe(ctx, *rate, *duration, *slo)
	if err != nil {
		fatalf("serve measurement: %v", err)
	}
	bench.Serve = sb

	if *kneeTrial > 0 {
		fmt.Fprintln(os.Stderr, "benchreport: searching for the saturation knee...")
		res, err := collectKnee(ctx, *slo, *kneeTrial)
		if err != nil {
			fatalf("knee search: %v", err)
		}
		bench.KneeRPS = res.Knee
		bench.KneeSLOMS = float64(slo.Milliseconds())
		bench.KneeTrials = len(res.Trials)
	}

	buf, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s\n", *out)
	_, _ = os.Stdout.Write(buf)

	if baseline != nil {
		regs, notes := Compare(baseline, bench)
		for _, n := range notes {
			fmt.Fprintf(os.Stderr, "benchreport: note: %s\n", n)
		}
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "benchreport: REGRESSION: %s\n", r)
			}
			if *check {
				os.Exit(1)
			}
		} else {
			fmt.Fprintf(os.Stderr, "benchreport: no regressions vs PR %d\n", baseline.PR)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
	os.Exit(1)
}
