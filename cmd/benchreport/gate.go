package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// BenchSchema identifies the BENCH_<pr>.json shape written by this build.
// Bump when the metric set changes meaning; additions of new metrics also
// bump it so a file's schema states exactly which metrics it can carry.
const BenchSchema = "tqsim-bench/2"

// knownSchemas lists every BENCH shape this tool can read and gate
// against. Older versions stay loadable so a schema bump does not orphan
// the committed trajectory: Compare gates the metrics both files share and
// reports current-only metrics as new (ungated) instead of failing on the
// version string — otherwise the first run after a bump would fail by
// construction against the previous PR's file.
var knownSchemas = map[string]bool{
	"tqsim-bench/1": true,
	BenchSchema:     true,
}

// Bench is one point on the repo's performance trajectory: the schema'd
// contents of a committed BENCH_<pr>.json. Every metric is collected by
// cmd/benchreport on one machine in one run, so numbers within a file are
// mutually comparable; across files the gate uses noise-tolerant
// thresholds rather than exact deltas.
type Bench struct {
	Schema string `json:"schema"`
	PR     int    `json:"pr"`
	GoVer  string `json:"go,omitempty"`

	// Kernels maps kernel names (e.g. "H/q20") to amplitudes visited per
	// second — the engine-level numbers every speedup bottoms out in.
	Kernels map[string]float64 `json:"kernels_amps_per_s"`

	// SweepWorkRatio is gate applications with cross-point prefix reuse
	// over without, for BenchmarkSweepReuse's spec. Lower is better; 1.0
	// means the reuse shortcut never fired.
	SweepWorkRatio float64 `json:"sweep_work_ratio"`

	// Serve is a fixed-rate tqsimgen run against an in-process tqsimd.
	Serve ServeBench `json:"serve"`

	// KneeRPS is the saturation knee: the highest probed rate whose p99
	// met the knee SLO (0 = not measured).
	KneeRPS    float64 `json:"knee_rps,omitempty"`
	KneeSLOMS  float64 `json:"knee_slo_ms,omitempty"`
	KneeTrials int     `json:"knee_trials,omitempty"`
}

// ServeBench is the serve-layer slice of the trajectory.
type ServeBench struct {
	RateRPS    float64 `json:"rate_rps"`
	DurationS  float64 `json:"duration_s"`
	SLOMS      float64 `json:"slo_ms"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	OfferedRPS float64 `json:"offered_rps"`
	GoodputRPS float64 `json:"goodput_rps"`
}

// goodputRatio is goodput normalized by offered load — the
// machine-portable serve health number (absolute RPS is not portable
// across runner sizes; the fraction of offered load served within SLO is).
func (s ServeBench) goodputRatio() float64 {
	if s.OfferedRPS <= 0 {
		return 0
	}
	return s.GoodputRPS / s.OfferedRPS
}

func loadBench(path string) (*Bench, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bench
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !knownSchemas[b.Schema] {
		return nil, fmt.Errorf("%s: unknown schema %q (this build writes %q)", path, b.Schema, BenchSchema)
	}
	return &b, nil
}

var benchFileRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// resolveBaseline implements -against auto: the committed BENCH_*.json
// with the highest PR number in dir ("" = none committed yet).
func resolveBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchFileRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		if n > bestN {
			best, bestN = filepath.Join(dir, e.Name()), n
		}
	}
	return best, nil
}

// Regression thresholds. They are deliberately loose: the gate exists to
// catch real regressions (a kernel halving, reuse breaking, the serve
// path falling over), not scheduler jitter. Ratios are used wherever the
// metric scales with machine size.
const (
	kernelFailFactor  = 0.5  // kernel slower than half the baseline
	sweepRatioSlack   = 0.05 // absolute worsening of the work ratio
	serveP99Factor    = 3.0  // p99 more than 3x baseline...
	serveP99SlackMS   = 20.0 // ...plus absolute slack for tiny baselines
	goodputRatioSlack = 0.2  // goodput/offered fraction drop
	kneeFailFactor    = 0.5  // knee below half the baseline
)

// Compare gates cur against prev and returns one line per regression
// (empty regs = pass) plus informational notes. Metrics present in prev
// but missing in cur are regressions: losing a measurement silently would
// blind the trajectory. Metrics present only in cur — typically introduced
// by a schema bump — are new and ungated, reported as notes so the first
// run after a bump gates the shared metrics instead of failing on the
// version string.
func Compare(prev, cur *Bench) (regs, notes []string) {
	if prev.Schema != cur.Schema {
		notes = append(notes, fmt.Sprintf("gating across schemas (baseline %q, current %q): shared metrics only",
			prev.Schema, cur.Schema))
	}
	names := make([]string, 0, len(prev.Kernels))
	for name := range prev.Kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := prev.Kernels[name]
		got, ok := cur.Kernels[name]
		if !ok {
			regs = append(regs, fmt.Sprintf("kernel %s: missing from current run (baseline %.3g amps/s)", name, base))
			continue
		}
		if base > 0 && got < base*kernelFailFactor {
			regs = append(regs, fmt.Sprintf("kernel %s: %.3g amps/s < %.0f%% of baseline %.3g",
				name, got, kernelFailFactor*100, base))
		}
	}
	curNames := make([]string, 0, len(cur.Kernels))
	for name := range cur.Kernels {
		if _, ok := prev.Kernels[name]; !ok {
			curNames = append(curNames, name)
		}
	}
	sort.Strings(curNames)
	for _, name := range curNames {
		notes = append(notes, fmt.Sprintf("kernel %s: new, ungated (%.3g amps/s)", name, cur.Kernels[name]))
	}
	if prev.SweepWorkRatio > 0 && cur.SweepWorkRatio > prev.SweepWorkRatio+sweepRatioSlack {
		regs = append(regs, fmt.Sprintf("sweep work ratio %.3f worse than baseline %.3f + %.2f slack",
			cur.SweepWorkRatio, prev.SweepWorkRatio, sweepRatioSlack))
	}
	if prev.Serve.P99MS > 0 && cur.Serve.P99MS > prev.Serve.P99MS*serveP99Factor+serveP99SlackMS {
		regs = append(regs, fmt.Sprintf("serve p99 %.1fms > baseline %.1fms x%.0f + %.0fms",
			cur.Serve.P99MS, prev.Serve.P99MS, serveP99Factor, serveP99SlackMS))
	}
	if pr := prev.Serve.goodputRatio(); pr > 0 && cur.Serve.goodputRatio() < pr-goodputRatioSlack {
		regs = append(regs, fmt.Sprintf("serve goodput/offered %.2f < baseline %.2f - %.2f slack",
			cur.Serve.goodputRatio(), pr, goodputRatioSlack))
	}
	if prev.KneeRPS > 0 && cur.KneeRPS > 0 && cur.KneeRPS < prev.KneeRPS*kneeFailFactor {
		regs = append(regs, fmt.Sprintf("knee %.1f req/s < %.0f%% of baseline %.1f",
			cur.KneeRPS, kneeFailFactor*100, prev.KneeRPS))
	}
	if prev.KneeRPS > 0 && cur.KneeRPS == 0 {
		regs = append(regs, fmt.Sprintf("knee missing from current run (baseline %.1f req/s)", prev.KneeRPS))
	}
	return regs, notes
}
