package main

import (
	"context"
	"fmt"
	"math/cmplx"
	"net/http/httptest"
	"os"
	"time"

	"tqsim"
	"tqsim/internal/gate"
	"tqsim/internal/loadgen"
	"tqsim/internal/qmath"
	"tqsim/internal/rng"
	"tqsim/internal/serve"
	"tqsim/internal/statevec"
)

// collectKernels times the gate kernels the BENCH trajectory tracks:
// a dense single-qubit gate, a control-permutation gate, a diagonal gate,
// the generic dense two- and three-qubit kernels, and the fused
// controlled-phase run — each at its regime width. Each kernel runs for
// ~minKernelTime of wall time (manual loop — the fixed budget keeps the
// whole collection bounded, unlike testing.B's benchtime).
func collectKernels() map[string]float64 {
	const minKernelTime = 200 * time.Millisecond
	apply := func(g gate.Gate) func(*statevec.State) {
		return func(st *statevec.State) { st.Apply(g) }
	}
	// PhaseRun8 is the cache-blocked fusion kernel: eight controlled
	// phases sharing one anchor in a single half-space sweep (a QFT row's
	// worth of CPs). Fused3Q is the dense 8x8 gather/scatter kernel on a
	// fixed random unitary.
	phaseQs := []int{2, 4, 6, 8, 12, 14, 16, 18}
	phases := make([]complex128, len(phaseQs))
	for i := range phases {
		phases[i] = cmplx.Exp(complex(0, 0.1*float64(i+1)))
	}
	u8 := qmath.RandomUnitary(8, rng.New(77))
	kernels := []struct {
		name  string
		w     int
		apply func(*statevec.State)
	}{
		{"H/q10", 10, apply(gate.New(gate.KindH, 5))},
		{"H/q20", 20, apply(gate.New(gate.KindH, 10))},
		{"CX/q20", 20, apply(gate.New(gate.KindCX, 10, 9))},
		{"RZ/q20", 20, apply(gate.NewParam(gate.KindRZ, []float64{0.3}, 10))},
		{"Apply2Q/q20", 20, apply(gate.NewParam(gate.KindCRX, []float64{0.4}, 10, 9))},
		{"Fused3Q/q20", 20, func(st *statevec.State) { st.Apply3Q(10, 9, 8, u8) }},
		{"PhaseRun8/q20", 20, func(st *statevec.State) { st.ApplyPhaseRun(10, phaseQs, phases) }},
	}
	out := make(map[string]float64, len(kernels))
	for _, k := range kernels {
		st := statevec.NewZero(k.w)
		// Warm up caches and the allocator before timing.
		k.apply(st)
		iters := 0
		start := time.Now()
		for time.Since(start) < minKernelTime {
			k.apply(st)
			iters++
		}
		elapsed := time.Since(start)
		out[k.name] = float64(st.Dim()) * float64(iters) / elapsed.Seconds()
	}
	return out
}

// collectSweepRatio runs BenchmarkSweepReuse's exact spec with reuse on
// and off and returns the gate-application work ratio (on/off, lower is
// better). The spec lives here too so the trajectory number and the
// benchmark measure the same workload.
func collectSweepRatio() (float64, error) {
	spec := func(noReuse bool) *tqsim.SweepSpec {
		return &tqsim.SweepSpec{
			Circuit: "qft_n10",
			Noise: []tqsim.SweepNoisePoint{
				{P1: 0.0002, P2: 0.001},
				{P1: 0.0005, P2: 0.002},
				{P1: 0.001, P2: 0.005},
			},
			Shots:    []int{1000},
			Repeats:  2,
			Seed:     17,
			CopyCost: 5,
			Backend:  "statevec",
			NoReuse:  noReuse,
		}
	}
	on, err := tqsim.RunSweep(spec(false))
	if err != nil {
		return 0, fmt.Errorf("sweep (reuse on): %w", err)
	}
	off, err := tqsim.RunSweep(spec(true))
	if err != nil {
		return 0, fmt.Errorf("sweep (reuse off): %w", err)
	}
	if off.GateApplications == 0 {
		return 0, fmt.Errorf("sweep did no work")
	}
	return float64(on.GateApplications) / float64(off.GateApplications), nil
}

// collectServe drives an in-process tqsimd at a fixed rate with the
// default mix and records the client-side quantiles and goodput.
func collectServe(ctx context.Context, rate float64, duration, slo time.Duration) (ServeBench, error) {
	ts := httptest.NewServer(serve.New(serve.Config{
		StoreEntries:       512,
		SnapshotCacheBytes: 256 << 20,
	}))
	defer ts.Close()
	spec := &loadgen.Spec{
		Arrival:        "poisson",
		Rate:           rate,
		Duration:       duration,
		Seed:           8,
		ReplayFraction: 0.2,
		SLOp99:         slo,
	}
	rep, err := loadgen.RunWithClient(ctx, ts.Client(), ts.URL, spec)
	if err != nil {
		return ServeBench{}, err
	}
	return ServeBench{
		RateRPS:    rate,
		DurationS:  duration.Seconds(),
		SLOMS:      float64(slo.Milliseconds()),
		P50MS:      rep.P50MS,
		P99MS:      rep.P99MS,
		OfferedRPS: rep.Offered,
		GoodputRPS: rep.Goodput,
	}, nil
}

// collectKnee bisects to the saturation knee of a fresh in-process
// tqsimd. Every trial runs against its own store-less server at a
// derived seed stream, so no trial is answered from a previous trial's
// cached results (replays measure the store, not the simulator).
func collectKnee(ctx context.Context, slo, trialDur time.Duration) (*loadgen.KneeResult, error) {
	trialIdx := 0
	trial := func(ctx context.Context, rate float64) (*loadgen.Report, error) {
		trialIdx++
		ts := httptest.NewServer(serve.New(serve.Config{StoreEntries: -1}))
		defer ts.Close()
		spec := &loadgen.Spec{
			Arrival:  "poisson",
			Rate:     rate,
			Duration: trialDur,
			Seed:     rng.SeedAt(8, uint64(1000+trialIdx)),
			SLOp99:   slo,
		}
		fmt.Fprintf(os.Stderr, "benchreport: knee trial %d at %.1f req/s\n", trialIdx, rate)
		return loadgen.RunWithClient(ctx, ts.Client(), ts.URL, spec)
	}
	return loadgen.FindKnee(ctx, loadgen.KneeSpec{
		StartRate: 16,
		MaxRate:   2048,
		SLOp99:    slo,
		Tolerance: 0.15,
	}, trial)
}
