package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baseBench() *Bench {
	return &Bench{
		Schema: BenchSchema,
		PR:     7,
		Kernels: map[string]float64{
			"H/q10":  2e9,
			"H/q20":  4e9,
			"CX/q20": 3e9,
		},
		SweepWorkRatio: 0.62,
		Serve: ServeBench{
			RateRPS: 40, DurationS: 8, SLOMS: 500,
			P50MS: 10, P99MS: 60, OfferedRPS: 40, GoodputRPS: 39,
		},
		KneeRPS: 120,
	}
}

// mutate deep-copies the baseline and applies one seeded change.
func mutate(f func(*Bench)) *Bench {
	b := baseBench()
	kernels := make(map[string]float64, len(b.Kernels))
	for k, v := range b.Kernels {
		kernels[k] = v
	}
	b.Kernels = kernels
	f(b)
	return b
}

// TestCompareGate seeds each regression class the gate must catch, and
// the noise-level wobble it must NOT catch.
func TestCompareGate(t *testing.T) {
	prev := baseBench()
	cases := []struct {
		name string
		cur  *Bench
		want string // substring of the expected regression ("" = pass)
	}{
		{"identical", mutate(func(b *Bench) {}), ""},
		{"kernel noise", mutate(func(b *Bench) { b.Kernels["H/q20"] *= 0.8 }), ""},
		{"kernel halved", mutate(func(b *Bench) { b.Kernels["H/q20"] *= 0.4 }), "kernel H/q20"},
		{"kernel missing", mutate(func(b *Bench) { delete(b.Kernels, "CX/q20") }), "kernel CX/q20: missing"},
		{"kernel improved", mutate(func(b *Bench) { b.Kernels["H/q10"] *= 3 }), ""},
		{"ratio noise", mutate(func(b *Bench) { b.SweepWorkRatio += 0.03 }), ""},
		{"reuse broken", mutate(func(b *Bench) { b.SweepWorkRatio = 1.0 }), "sweep work ratio"},
		{"p99 noise", mutate(func(b *Bench) { b.Serve.P99MS *= 2 }), ""},
		{"p99 blown", mutate(func(b *Bench) { b.Serve.P99MS = 400 }), "serve p99"},
		{"goodput noise", mutate(func(b *Bench) { b.Serve.GoodputRPS = 36 }), ""},
		{"goodput collapsed", mutate(func(b *Bench) { b.Serve.GoodputRPS = 20 }), "goodput/offered"},
		{"knee noise", mutate(func(b *Bench) { b.KneeRPS = 80 }), ""},
		{"knee collapsed", mutate(func(b *Bench) { b.KneeRPS = 50 }), "knee 50.0"},
		{"knee lost", mutate(func(b *Bench) { b.KneeRPS = 0 }), "knee missing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			regs, _ := Compare(prev, tc.cur)
			if tc.want == "" {
				if len(regs) != 0 {
					t.Fatalf("expected pass, got regressions: %v", regs)
				}
				return
			}
			found := false
			for _, r := range regs {
				if strings.Contains(r, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("expected a regression containing %q, got: %v", tc.want, regs)
			}
		})
	}
}

// TestCompareAcrossSchemas: a baseline written under the previous schema
// still gates the metrics both files share; metrics only the current file
// carries are notes ("new, ungated"), never regressions. This is exactly
// the first-run-after-a-schema-bump scenario.
func TestCompareAcrossSchemas(t *testing.T) {
	prev := baseBench()
	prev.Schema = "tqsim-bench/1"
	cur := mutate(func(b *Bench) {
		b.Kernels["Apply2Q/q20"] = 5e8 // new in the current schema
		b.Kernels["PhaseRun8/q20"] = 2e9
	})
	regs, notes := Compare(prev, cur)
	if len(regs) != 0 {
		t.Fatalf("cross-schema gate regressed on new metrics: %v", regs)
	}
	joined := strings.Join(notes, "\n")
	for _, want := range []string{"across schemas", "Apply2Q/q20: new, ungated", "PhaseRun8/q20: new, ungated"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("notes missing %q: %v", want, notes)
		}
	}
	// Shared metrics are still gated across the schema boundary.
	cur2 := mutate(func(b *Bench) { b.Kernels["H/q20"] *= 0.4 })
	regs, _ = Compare(prev, cur2)
	if len(regs) != 1 || !strings.Contains(regs[0], "kernel H/q20") {
		t.Fatalf("shared metric not gated across schemas: %v", regs)
	}
}

// TestCompareMultipleRegressions: independent regressions all surface in
// one gate run, not just the first.
func TestCompareMultipleRegressions(t *testing.T) {
	cur := mutate(func(b *Bench) {
		b.Kernels["H/q10"] *= 0.1
		b.SweepWorkRatio = 0.99
		b.KneeRPS = 10
	})
	regs, _ := Compare(baseBench(), cur)
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions, got %d: %v", len(regs), regs)
	}
}

// TestLoadBenchSchemaGate: files with the wrong schema are refused, not
// silently compared.
func TestLoadBenchSchemaGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_3.json")
	if err := os.WriteFile(path, []byte(`{"schema":"tqsim-bench/99","pr":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBench(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema file accepted: %v", err)
	}
	if err := os.WriteFile(path, []byte(`not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBench(path); err == nil {
		t.Fatal("corrupt file accepted")
	}
	// Previous-schema files stay loadable: the trajectory must survive a
	// schema bump.
	if err := os.WriteFile(path, []byte(`{"schema":"tqsim-bench/1","pr":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, err := loadBench(path); err != nil || b.PR != 3 {
		t.Fatalf("v1 file refused: %v", err)
	}
}

// TestResolveBaseline picks the highest-numbered BENCH file.
func TestResolveBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_9.json", "BENCHMARK.md", "notes.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := resolveBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_10.json" {
		t.Fatalf("resolved %q, want BENCH_10.json", got)
	}
	empty := t.TempDir()
	got, err = resolveBaseline(empty)
	if err != nil || got != "" {
		t.Fatalf("empty dir: got %q, %v", got, err)
	}
}
