package main

import (
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
)

// humanRate renders amps/s with an SI suffix, benchstat-style.
func humanRate(v float64) string {
	switch {
	case v <= 0:
		return "-"
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.0fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}

// ratioCell renders new/old ("-" when either side is missing).
func ratioCell(old, new float64) string {
	if old <= 0 || new <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", new/old)
}

// printDiff renders a benchstat-style before/after table of two BENCH
// files: one row per kernel (union of both metric sets, "-" where a side
// lacks the measurement) plus the scalar trajectory metrics. Ratios are
// new/old, so >1 is faster for throughput rows and worse for latency rows.
func printDiff(a, b *Bench) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "metric\tPR %d\tPR %d\tratio\n", a.PR, b.PR)
	names := map[string]bool{}
	for name := range a.Kernels {
		names[name] = true
	}
	for name := range b.Kernels {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		va, vb := a.Kernels[name], b.Kernels[name]
		fmt.Fprintf(w, "kernel %s (amps/s)\t%s\t%s\t%s\n",
			name, humanRate(va), humanRate(vb), ratioCell(va, vb))
	}
	fmt.Fprintf(w, "sweep work ratio\t%.3f\t%.3f\t%s\n",
		a.SweepWorkRatio, b.SweepWorkRatio, ratioCell(a.SweepWorkRatio, b.SweepWorkRatio))
	fmt.Fprintf(w, "serve p50 (ms)\t%.1f\t%.1f\t%s\n",
		a.Serve.P50MS, b.Serve.P50MS, ratioCell(a.Serve.P50MS, b.Serve.P50MS))
	fmt.Fprintf(w, "serve p99 (ms)\t%.1f\t%.1f\t%s\n",
		a.Serve.P99MS, b.Serve.P99MS, ratioCell(a.Serve.P99MS, b.Serve.P99MS))
	fmt.Fprintf(w, "serve goodput/offered\t%.2f\t%.2f\t%s\n",
		a.Serve.goodputRatio(), b.Serve.goodputRatio(),
		ratioCell(a.Serve.goodputRatio(), b.Serve.goodputRatio()))
	if a.KneeRPS > 0 || b.KneeRPS > 0 {
		fmt.Fprintf(w, "knee (req/s)\t%.1f\t%.1f\t%s\n",
			a.KneeRPS, b.KneeRPS, ratioCell(a.KneeRPS, b.KneeRPS))
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: diff table: %v\n", err)
	}
}
