// Command tqsimgen is the tqsim load generator and capacity prober: a
// seeded, deterministic workload driver for a running tqsimd (or a
// self-hosted in-process one) built on internal/loadgen.
//
// It offers open-loop (Poisson or fixed-rate) and closed-loop (K clients
// with think time) arrival processes over a configurable request mix —
// jobs and sweeps, streaming and JSON shapes, fresh seeds and
// store-replay repeats — and reports client-side p50/p95/p99 latency,
// throughput, goodput under a p99 SLO, and the 413/429/503/error
// breakdown. The offered workload is a pure function of (-seed, flags):
// two runs at the same seed issue byte-identical request sequences on
// identical schedules, so capacity experiments differ only in the system
// under test.
//
// Quickstart (against a self-hosted in-process server):
//
//	tqsimgen -self -rate 50 -duration 10s -slo-p99 500ms
//
// Against a live daemon, with machine-readable output:
//
//	tqsimd -addr :8651 &
//	tqsimgen -target http://localhost:8651 -rate 50 -duration 10s -slo-p99 500ms -json
//
// Closed-loop (8 clients, 20ms mean think time):
//
//	tqsimgen -self -arrival closed -clients 8 -think 20ms -duration 10s
//
// Saturation knee — ramp and bisect to the highest rate whose p99 still
// meets the SLO:
//
//	tqsimgen -self -knee -slo-p99 500ms -knee-trial 5s
//
// Knee trials against a -target reuse the live server; each trial derives
// a distinct simulation-seed stream so a result-store-enabled server
// cannot answer later trials from earlier trials' cached results (which
// would inflate the measured capacity). With -self every trial gets a
// fresh store-less server for the same reason.
//
// After a -target run, tqsimgen fetches /v1/stats and prints the server's
// own latency histogram next to the client's — the server-side view
// (handler time) cross-checks the client-side one (round-trip time).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tqsim/internal/loadgen"
	"tqsim/internal/rng"
	"tqsim/internal/serve"
)

func main() {
	var (
		target   = flag.String("target", "", "base URL of a running tqsimd (e.g. http://localhost:8651)")
		self     = flag.Bool("self", false, "host an in-process tqsimd on an ephemeral port and drive that")
		arrival  = flag.String("arrival", "poisson", "arrival process: poisson, fixed, closed")
		rate     = flag.Float64("rate", 20, "offered request rate per second (open-loop)")
		clients  = flag.Int("clients", 4, "concurrent clients (closed-loop)")
		think    = flag.Duration("think", 0, "mean think time between a client's requests (closed-loop, exponential)")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		requests = flag.Int("requests", 0, "cap total requests issued (0 = no cap)")
		seed     = flag.Uint64("seed", 1, "seed for every deterministic stream (schedule, bodies, think times)")
		mixPath  = flag.String("mix", "", "JSON mix file (array of mix entries); empty = built-in default mix")
		replayFr = flag.Float64("replay-fraction", 0, "fraction of requests issued with a pinned seed (store-replay traffic)")
		sloP99   = flag.Duration("slo-p99", 0, "p99 latency SLO; goodput counts completed requests under it")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		inflight = flag.Int("max-inflight", 1024, "open-loop concurrency cap; arrivals beyond it are shed, not queued")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON instead of text")

		knee      = flag.Bool("knee", false, "find the saturation knee: ramp + bisect to the highest rate meeting -slo-p99")
		kneeStart = flag.Float64("knee-start", 8, "first probed rate")
		kneeMax   = flag.Float64("knee-max", 4096, "rate ceiling for the ramp")
		kneeTol   = flag.Float64("knee-tol", 0.1, "relative bracket width at which bisection stops")
		kneeTrial = flag.Duration("knee-trial", 5*time.Second, "duration of each probe trial")
		kneeErr   = flag.Float64("knee-max-errors", 0.01, "largest tolerated non-completion fraction per trial")
	)
	flag.Parse()

	if (*target == "") == !*self {
		fatalf("exactly one of -target or -self is required")
	}

	spec := &loadgen.Spec{
		Arrival:        *arrival,
		Rate:           *rate,
		Clients:        *clients,
		Think:          *think,
		Duration:       *duration,
		MaxRequests:    *requests,
		Seed:           *seed,
		ReplayFraction: *replayFr,
		SLOp99:         *sloP99,
		Timeout:        *timeout,
		MaxInFlight:    *inflight,
	}
	if *mixPath != "" {
		mix, err := loadgen.LoadMix(*mixPath)
		if err != nil {
			fatalf("%v", err)
		}
		spec.Mix = mix
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if *knee {
		if *sloP99 <= 0 {
			fatalf("-knee needs -slo-p99")
		}
		runKnee(ctx, *target, *self, spec, loadgen.KneeSpec{
			StartRate:        *kneeStart,
			MaxRate:          *kneeMax,
			SLOp99:           *sloP99,
			MaxErrorFraction: *kneeErr,
			Tolerance:        *kneeTol,
		}, *kneeTrial, *jsonOut)
		return
	}

	base, client, closeSrv := resolveTarget(*target, *self, serve.Config{})
	defer closeSrv()
	rep, err := loadgen.RunWithClient(ctx, client, base, spec)
	if err != nil {
		fatalf("%v", err)
	}
	if *jsonOut {
		out := struct {
			*loadgen.Report
			Server *serverLatency `json:"server,omitempty"`
		}{rep, fetchServerLatency(client, base)}
		emitJSON(out)
		return
	}
	fmt.Println(rep.String())
	if sl := fetchServerLatency(client, base); sl != nil && sl.Count > 0 {
		fmt.Printf("server-side (handler time): %d samples p50 %.3fms p99 %.3fms\n",
			sl.Count, sl.P50MS, sl.P99MS)
	}
}

// resolveTarget returns the base URL and client for the run, plus a
// cleanup func. cfg customizes the -self server (the zero Config gives
// tqsimd defaults plus a result store, like a stock daemon).
func resolveTarget(target string, self bool, cfg serve.Config) (string, *http.Client, func()) {
	if !self {
		return target, &http.Client{}, func() {}
	}
	if cfg.StoreEntries == 0 {
		cfg.StoreEntries = 512
	}
	if cfg.SnapshotCacheBytes == 0 {
		cfg.SnapshotCacheBytes = 256 << 20
	}
	ts := httptest.NewServer(serve.New(cfg))
	return ts.URL, ts.Client(), ts.Close
}

// runKnee wires a TrialFunc over the target and runs the bisection.
func runKnee(ctx context.Context, target string, self bool, spec *loadgen.Spec, ks loadgen.KneeSpec, trialDur time.Duration, jsonOut bool) {
	trialIdx := 0
	trial := func(ctx context.Context, rate float64) (*loadgen.Report, error) {
		trialIdx++
		s := *spec
		s.Arrival = "poisson"
		s.Rate = rate
		s.Duration = trialDur
		// Each trial draws its simulation seeds from a distinct derived
		// stream so a result store never answers trial N from trial N-1's
		// cached results — replayed trials would measure the store, not
		// the simulator, and report an inflated knee.
		s.Seed = rng.SeedAt(spec.Seed, uint64(1000+trialIdx))
		s.ReplayFraction = 0
		var (
			base    string
			client  *http.Client
			cleanup func()
		)
		if self {
			// A fresh store-less server per trial: no cross-trial state.
			base, client, cleanup = resolveTarget("", true, serve.Config{StoreEntries: -1})
		} else {
			base, client, cleanup = resolveTarget(target, false, serve.Config{})
		}
		defer cleanup()
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "trial %d: %.1f req/s for %v...\n", trialIdx, rate, trialDur)
		}
		return loadgen.RunWithClient(ctx, client, base, &s)
	}
	res, err := loadgen.FindKnee(ctx, ks, trial)
	if err != nil {
		fatalf("knee search: %v", err)
	}
	if jsonOut {
		emitJSON(res)
		return
	}
	for _, tr := range res.Trials {
		verdict := "ok"
		if tr.Breach {
			verdict = "BREACH (" + tr.Reason + ")"
		}
		fmt.Printf("  %8.1f req/s  p99 %8.3fms  errors %5.1f%%  %s\n", tr.Rate, tr.P99MS, tr.ErrFrc*100, verdict)
	}
	switch {
	case !res.Converged:
		fmt.Printf("knee: ≥ %.1f req/s (sustained the -knee-max ceiling without breaching)\n", res.Knee)
	case res.Knee == 0:
		fmt.Printf("knee: none — even the lowest probed rate breached the SLO\n")
	default:
		fmt.Printf("knee: %.1f req/s (first breach at %.1f req/s, bracket ±%.0f%%)\n",
			res.Knee, res.FirstBad, 100*(res.FirstBad-res.Knee)/res.FirstBad)
	}
}

// serverLatency is the slice of /v1/stats used for the cross-check.
type serverLatency struct {
	Count  uint64  `json:"latency_count"`
	MeanMS float64 `json:"latency_mean_ms"`
	P50MS  float64 `json:"latency_p50_ms"`
	P95MS  float64 `json:"latency_p95_ms"`
	P99MS  float64 `json:"latency_p99_ms"`
}

func fetchServerLatency(client *http.Client, base string) *serverLatency {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var sl serverLatency
	if json.NewDecoder(resp.Body).Decode(&sl) != nil {
		return nil
	}
	return &sl
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tqsimgen: "+format+"\n", args...)
	os.Exit(1)
}
