// Command repolint is a thin back-compat alias over the documentation
// checks that now live in internal/analysis and run as part of
// cmd/tqsimlint (the repository's single lint gate, `make lint`):
//
//	repolint -godoc [pkgdir ...]   every exported symbol in the packages has
//	                               a doc comment
//	repolint -links [root]         every relative link in the repo's
//	                               markdown files resolves to an existing
//	                               file or directory
//
// Exit status is nonzero when any check fails; findings are printed one
// per line as file:position: [check] message, so editors and CI
// annotations can jump to them. Prefer `tqsimlint` for new wiring.
package main

import (
	"flag"
	"fmt"
	"os"

	"tqsim/internal/analysis"
)

func main() {
	var (
		godoc = flag.Bool("godoc", false, "check exported symbols for missing doc comments")
		links = flag.Bool("links", false, "check relative markdown links resolve")
	)
	flag.Parse()
	if !*godoc && !*links {
		fmt.Fprintln(os.Stderr, "usage: repolint -godoc [pkgdir ...] | -links [root]")
		os.Exit(2)
	}
	var diags []analysis.Diagnostic
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(1)
	}
	if *godoc {
		dirs := flag.Args()
		if len(dirs) == 0 {
			dirs = []string{"."}
		}
		for _, dir := range dirs {
			got, err := analysis.CheckGodoc(dir)
			if err != nil {
				fail(err)
			}
			diags = append(diags, got...)
		}
	}
	if *links {
		root := "."
		if flag.NArg() > 0 {
			root = flag.Arg(0)
		}
		got, err := analysis.CheckLinks(root)
		if err != nil {
			fail(err)
		}
		diags = append(diags, got...)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
