// Command repolint enforces the repository's documentation contracts in CI:
//
//	repolint -godoc [pkgdir ...]   every exported symbol in the packages has
//	                               a doc comment (make ci runs it on the
//	                               public tqsim package)
//	repolint -links [root]         every relative link in the repo's
//	                               markdown files resolves to an existing
//	                               file or directory (make docs-check)
//
// Exit status is nonzero when any check fails; findings are printed one per
// line as file:position: message, so editors and CI annotations can jump to
// them.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	var (
		godoc = flag.Bool("godoc", false, "check exported symbols for missing doc comments")
		links = flag.Bool("links", false, "check relative markdown links resolve")
	)
	flag.Parse()
	if !*godoc && !*links {
		fmt.Fprintln(os.Stderr, "usage: repolint -godoc [pkgdir ...] | -links [root]")
		os.Exit(2)
	}
	failures := 0
	if *godoc {
		dirs := flag.Args()
		if len(dirs) == 0 {
			dirs = []string{"."}
		}
		for _, dir := range dirs {
			failures += checkGodoc(dir)
		}
	}
	if *links {
		root := "."
		if flag.NArg() > 0 {
			root = flag.Arg(0)
		}
		failures += checkLinks(root)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", failures)
		os.Exit(1)
	}
}

// checkGodoc reports every exported top-level symbol in the package
// directory that lacks a doc comment. Grouped const/var/type declarations
// count as documented when the group has a doc comment.
func checkGodoc(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: exported %s %s has no doc comment\n", fset.Position(pos), kind, name)
		bad++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					if d.Doc != nil {
						continue // group comment covers every spec
					}
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && sp.Doc == nil && sp.Comment == nil {
								report(sp.Pos(), "type", sp.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range sp.Names {
								if name.IsExported() && sp.Doc == nil && sp.Comment == nil {
									report(sp.Pos(), "value", name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return bad
}

// exportedRecv reports whether a function is package-level or a method on
// an exported receiver type — unexported receivers keep their methods out
// of godoc, so they are exempt.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkLinks walks the tree for markdown files and verifies every relative
// link target exists. External schemes and pure anchors are skipped;
// fragments are stripped before the existence check.
func checkLinks(root string) int {
	bad := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") ||
					strings.HasPrefix(target, "mailto:") ||
					strings.HasPrefix(target, "#") {
					continue
				}
				if idx := strings.IndexByte(target, '#'); idx >= 0 {
					target = target[:idx]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Printf("%s:%d: broken link %q (%s does not exist)\n",
						path, i+1, m[1], resolved)
					bad++
				}
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return bad + 1
	}
	return bad
}
