// Command tqsimlint is the repository's single lint gate: a multichecker
// running the six determinism & serve-invariant analyzers from
// internal/analysis plus the documentation contracts folded in from
// repolint.
//
//	tqsimlint ./...                 run everything (make lint does this)
//	tqsimlint -run maporder,errdrop ./internal/serve
//	tqsimlint -godoc= -links=false ./...   analyzers only
//	tqsimlint -list                 describe the analyzers and exit
//
// Each analyzer encodes an invariant that has already been violated once
// in this repository's history; docs/static-analysis.md documents every
// invariant, its incident, and the //lint:allow escape hatch. Findings
// print one per line as file:line:col: [analyzer] message and any finding
// makes the exit status nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tqsim/internal/analysis"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		godoc = flag.String("godoc", ".", "comma-separated package dirs for the exported-docs check; empty disables")
		links = flag.Bool("links", true, "check that relative markdown links resolve")
		list  = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-12s %s\n", "godoc", "every exported symbol in the public package has a doc comment")
		fmt.Printf("%-12s %s\n", "links", "every relative markdown link in the repo resolves")
		return
	}

	analyzers, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tqsimlint:", err)
		os.Exit(2)
	}

	root, module, err := analysis.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tqsimlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var diags []analysis.Diagnostic
	if len(analyzers) > 0 {
		pkgs, err := loadPatterns(patterns, root, module)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tqsimlint:", err)
			os.Exit(2)
		}
		diags, err = analysis.Run(pkgs, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tqsimlint:", err)
			os.Exit(2)
		}
	}

	if *godoc != "" {
		for _, dir := range strings.Split(*godoc, ",") {
			got, err := analysis.CheckGodoc(strings.TrimSpace(dir))
			if err != nil {
				fmt.Fprintln(os.Stderr, "tqsimlint:", err)
				os.Exit(2)
			}
			diags = append(diags, got...)
		}
	}
	if *links {
		got, err := analysis.CheckLinks(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tqsimlint:", err)
			os.Exit(2)
		}
		diags = append(diags, got...)
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "tqsimlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -run list against the registered suite.
func selectAnalyzers(spec string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if spec == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, found := byName[name]
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// loadPatterns loads package units for "dir", "dir/..." or "./..."
// patterns, one shared loader (and type-checker cache) across all of
// them. Type errors degrade the sweep rather than abort it, but are
// surfaced on stderr so a broken file can't silently shrink coverage.
func loadPatterns(patterns []string, root, module string) ([]*analysis.Package, error) {
	l := analysis.NewLoader()
	seen := map[string]bool{}
	var pkgs []*analysis.Package
	add := func(units []*analysis.Package) {
		for _, u := range units {
			if !seen[u.ImportPath] {
				seen[u.ImportPath] = true
				pkgs = append(pkgs, u)
			}
		}
	}
	for _, pat := range patterns {
		recursive := false
		dir := pat
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			dir = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if dir == "" || dir == "." {
				dir = root
			}
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q is outside the module at %s", pat, root)
		}
		importPath := module
		if rel != "." {
			importPath = module + "/" + filepath.ToSlash(rel)
		}
		if recursive {
			units, err := l.LoadTree(abs, importPath)
			if err != nil {
				return nil, err
			}
			add(units)
		} else {
			units, err := l.LoadDir(abs, importPath)
			if err != nil {
				return nil, err
			}
			add(units)
		}
	}
	for i, err := range l.TypeErrors {
		if i == 8 {
			fmt.Fprintf(os.Stderr, "tqsimlint: ... %d more type errors\n", len(l.TypeErrors)-i)
			break
		}
		fmt.Fprintln(os.Stderr, "tqsimlint: type error:", err)
	}
	return pkgs, nil
}
