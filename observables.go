package tqsim

import (
	"tqsim/internal/core"
	"tqsim/internal/observable"
	"tqsim/internal/trajectory"
)

// Observable types, re-exported for the VQA workflow of the paper's §5.7.
type (
	// PauliString is a weighted tensor product of single-qubit Paulis.
	PauliString = observable.PauliString
	// Hamiltonian is a sum of Pauli strings.
	Hamiltonian = observable.Hamiltonian
	// EstimateStats summarizes a trajectory-ensemble estimate: mean,
	// standard deviation, and the paper's Equation 2 standard error.
	EstimateStats = observable.EstimateStats
)

// NewPauliString builds a weighted Pauli string from a spec like "ZZ" on
// the given qubits.
func NewPauliString(coef float64, spec string, qubits ...int) PauliString {
	return observable.NewPauliString(coef, spec, qubits...)
}

// TransverseFieldIsing builds H = -J sum Z_i Z_{i+1} - hx sum X_i on a ring.
func TransverseFieldIsing(n int, j, hx float64) *Hamiltonian {
	return observable.TransverseFieldIsing(n, j, hx)
}

// MaxCutHamiltonian builds the max-cut cost observable for a graph.
func MaxCutHamiltonian(g *Graph) *Hamiltonian {
	return observable.MaxCutHamiltonian(g.N, g.Edges)
}

// ExactExpectation returns <psi|H|psi> on the circuit's noise-free final
// state. Fully deterministic: no noise, no sampling.
func ExactExpectation(c *Circuit, h *Hamiltonian) float64 {
	return h.ExpectationState(trajectory.IdealState(c))
}

// EstimateExpectationBaseline estimates tr(rho H) with the conventional
// multi-shot simulator: one exact expectation per trajectory, averaged.
// The estimate is a pure function of (circuit, noise, shots, Options.Seed):
// repeated runs reproduce it bit-for-bit.
func EstimateExpectationBaseline(c *Circuit, m *NoiseModel, h *Hamiltonian, shots int, opt Options) (EstimateStats, error) {
	res, err := trajectory.RunExpectation(c, m, h, shots, trajectory.Options{Seed: opt.Seed})
	if err != nil {
		return EstimateStats{}, err
	}
	return res.Stats, nil
}

// EstimateExpectationTQSim estimates tr(rho H) with the tree simulator:
// DCP plans the tree, each leaf contributes one exact expectation. The
// estimate is a pure function of (circuit, noise, shots, Options) —
// identical at any Options.Parallelism, like the tree histograms, because
// leaf RNG streams are keyed by DFS sequence numbers. Backend "auto"
// resolves to the dense reference engine here: observables need dense leaf
// states, so the planner's polynomial routes do not apply.
func EstimateExpectationTQSim(c *Circuit, m *NoiseModel, h *Hamiltonian, shots int, opt Options) (EstimateStats, *TreeResult, error) {
	plan := PlanDCP(c, m, shots, opt)
	if opt.backendName() == AutoBackend {
		// Observables evaluate <H> on dense leaf states, so the planner's
		// polynomial winners (tableau tree, densmat) do not apply here; auto
		// resolves to the dense reference engine.
		opt.Backend = "statevec"
	}
	// Observables need dense leaf states, so there is no polynomial route
	// here regardless of backend; diagnose infeasible widths up front.
	if err := denseWidthCheck(c, opt.backendName(), m); err != nil {
		return EstimateStats{}, nil, err
	}
	be, err := opt.backend()
	if err != nil {
		return EstimateStats{}, nil, err
	}
	ex := &core.Executor{
		Backend:     be,
		Noise:       m,
		Seed:        opt.Seed,
		Parallelism: opt.Parallelism,
	}
	res, err := ex.RunExpectation(plan, h)
	if err != nil {
		return EstimateStats{}, nil, err
	}
	return res.Stats, res.Run, nil
}
